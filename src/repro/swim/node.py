"""The SWIM / Lifeguard protocol engine.

:class:`SwimNode` implements the complete protocol evaluated in the paper:
SWIM's probe-based failure detector and suspicion subprotocol, memberlist's
production extensions (dedicated gossip tick, anti-entropy push/pull,
dead-member retention, reliable-channel fallback probe), and the three
Lifeguard components, each independently switchable via
:class:`~repro.config.LifeguardFlags`:

* **LHA-Probe** — probe interval/timeout scaled by the Local Health
  Multiplier; ``nack`` messages on indirect probes.
* **LHA-Suspicion** — decaying suspicion timeouts driven by independent
  confirmations, with re-gossip of the first ``K``.
* **Buddy System** — forced piggybacking of the suspicion onto any ping
  sent to a suspected member.

The node is sans-IO: all side effects flow through the injected clock,
scheduler and transport (see :mod:`repro.runtime`), which is what lets the
same code run under the discrete-event simulator and under asyncio UDP.
"""

from __future__ import annotations

import random
import struct
from typing import Callable, Dict, List, Optional, Sequence

from repro.config import SwimConfig
from repro.core.buddy import BuddyPiggybacker
from repro.core.lhm import LhmEvent, LocalHealthMultiplier
from repro.core.suspicion import Suspicion, suspicion_bounds
from repro.metrics.telemetry import Telemetry
from repro.runtime import Clock, Scheduler, TimerHandle, Transport
from repro.swim import codec
from repro.swim.broadcast import BroadcastQueue
from repro.swim.events import EventKind, EventListener, MemberEvent
from repro.swim.member_map import (
    MERGE_ADDED,
    MERGE_APPLIED,
    MERGE_LOCAL,
    MERGE_SUSPECT,
    Member,
    MemberMap,
    MergeDecision,
)
from repro.swim.messages import (
    Ack,
    Alive,
    Compound,
    Dead,
    Message,
    Nack,
    Ping,
    PingReq,
    PushPull,
    Suspect,
    UserEvent,
    primary_kind,
)
from repro.swim.probe_scheduler import make_probe_scheduler
from repro.swim.state import MemberState
from repro.sync import FallbackPolicy, SyncEngine

_SEQ_MODULUS = 2**32


class _Probe:
    """Book-keeping for one in-flight probe the local member initiated."""

    __slots__ = (
        "seq_no",
        "target",
        "started_at",
        "acked",
        "expected_nacks",
        "nacks_received",
        "fallback_sent",
        "timeout_timer",
        "indirect_timer",
        "deadline_timer",
    )

    def __init__(self, seq_no: int, target: str, started_at: float) -> None:
        self.seq_no = seq_no
        self.target = target
        self.started_at = started_at
        self.acked = False
        self.expected_nacks = 0
        self.nacks_received = 0
        self.fallback_sent = False
        self.timeout_timer: Optional[TimerHandle] = None
        self.indirect_timer: Optional[TimerHandle] = None
        self.deadline_timer: Optional[TimerHandle] = None


class _IndirectRelay:
    """Book-keeping for a ping we sent on behalf of another member."""

    __slots__ = (
        "origin_seq",
        "origin_address",
        "want_nack",
        "nack_timer",
        "expiry_timer",
    )

    def __init__(self, origin_seq: int, origin_address: str, want_nack: bool) -> None:
        self.origin_seq = origin_seq
        self.origin_address = origin_address
        self.want_nack = want_nack
        self.nack_timer: Optional[TimerHandle] = None
        self.expiry_timer: Optional[TimerHandle] = None


class _SuspicionEntry:
    __slots__ = ("suspicion", "timer")

    def __init__(self, suspicion: Suspicion, timer: Optional[TimerHandle]) -> None:
        self.suspicion = suspicion
        self.timer = timer


class SwimNode:
    """One group member.

    Parameters
    ----------
    name:
        Unique member name.
    config:
        Protocol parameters (including which Lifeguard components run).
    clock / scheduler / transport:
        The runtime the node is hosted on; see :mod:`repro.runtime`.
    rng:
        Source of all protocol randomness (probe-list shuffles, gossip
        fan-out sampling, start jitter). Inject a seeded
        :class:`random.Random` for deterministic runs.
    listener:
        Optional callback receiving a :class:`MemberEvent` for every
        membership transition this node observes.
    """

    def __init__(
        self,
        name: str,
        config: SwimConfig,
        clock: Clock,
        scheduler: Scheduler,
        transport: Transport,
        rng: Optional[random.Random] = None,
        listener: Optional[EventListener] = None,
        meta: bytes = b"",
        on_user_event=None,
    ) -> None:
        self.name = name
        self.config = config
        self._clock = clock
        self._scheduler = scheduler
        self._transport = transport
        # Transports that copy (or fully consume) the payload before
        # ``send`` returns advertise ``supports_buffer_send``; for those
        # the node reuses one scratch buffer for every outgoing datagram
        # instead of allocating a fresh ``bytes`` per packet.
        self._packet_scratch: Optional[bytearray] = (
            bytearray()
            if getattr(transport, "supports_buffer_send", False)
            else None
        )
        self._rng = rng if rng is not None else random.Random()
        self._listeners: List[EventListener] = [] if listener is None else [listener]
        self._on_user_event = on_user_event
        #: Optional ack-latency hook: called as ``hook(target, rtt_seconds)``
        #: for every probe whose ``ack`` arrived on the *direct* path (i.e.
        #: before the probe timeout launched indirect helpers). Indirect
        #: acks and nacks are excluded, so the observations measure the
        #: peer round trip, not the relay detour. Feeds the ops plane's
        #: probe-RTT histogram (:class:`repro.ops.registry.NodeCollector`).
        self.on_probe_rtt: Optional[Callable[[str, float], None]] = None

        self.telemetry = Telemetry()
        self._probe_scheduler = make_probe_scheduler(config.probe_scheduler)
        self._members = MemberMap(
            name,
            transport.local_address,
            self._rng,
            probe_scheduler=self._probe_scheduler,
            zone=config.zone,
        )
        self._members.set_local_meta(meta)
        # The largest broadcast any packet can carry: the dedicated gossip
        # tick's budget minus one part's framing. Anything bigger would be
        # skipped on every packet yet never retired, pinning the queue.
        max_broadcast = (
            config.max_packet_size
            - codec.COMPOUND_HEADER_OVERHEAD
            - codec.COMPOUND_PART_OVERHEAD
        )
        self._broadcasts = BroadcastQueue(
            config.retransmit_mult,
            lambda: len(self._members),
            max_payload=max_broadcast,
            on_oversized=self.telemetry.record_oversized_broadcast,
        )
        # Application-level gossip rides in a second, lower-priority
        # queue so bursts of user events can never starve membership
        # updates (memberlist's system/user queue split).
        self._user_broadcasts = BroadcastQueue(
            config.retransmit_mult,
            lambda: len(self._members),
            max_payload=max_broadcast,
            on_oversized=self.telemetry.record_oversized_broadcast,
        )
        self._user_seq = 0
        self._seen_user_events: Dict[tuple, None] = {}
        self._lhm = LocalHealthMultiplier(
            max_value=config.lhm_max, enabled=config.flags.lha_probe
        )
        self._buddy = BuddyPiggybacker(
            enabled=config.flags.buddy_system,
            is_suspected=self._is_suspected,
            make_suspect_payload=self._encode_local_suspicion,
        )

        # Anti-entropy: the engine owns the push-pull/reconnect rounds and
        # snapshot merges; the node keeps the timers and pause semantics.
        self._sync = SyncEngine(
            name,
            self._members,
            clock,
            self._rng,
            self._send_sync,
            self._apply_merge_decision,
            self.telemetry,
        )
        self._fallback = FallbackPolicy(
            config.tcp_fallback_probe,
            config.fallback_probe_wait,
            self.telemetry,
        )

        self._seq = 0
        self._probes: Dict[int, _Probe] = {}
        self._relays: Dict[int, _IndirectRelay] = {}
        self._suspicions: Dict[str, _SuspicionEntry] = {}

        self._reliable_failures: Dict[str, float] = {}
        self._running = False
        self._probe_timer: Optional[TimerHandle] = None
        self._gossip_timer: Optional[TimerHandle] = None
        self._push_pull_timer: Optional[TimerHandle] = None
        self._reconnect_timer: Optional[TimerHandle] = None
        self._leaving = False
        self._paused = False
        # Dict-as-ordered-set: deferred ticks must replay in the order
        # they were deferred, independent of string hashing, or seeded
        # runs diverge across interpreter invocations (PYTHONHASHSEED).
        self._deferred_ticks: Dict[str, None] = {}
        self._overlay_neighbors: Optional[List[str]] = None

    # ------------------------------------------------------------------ #
    # Public surface
    # ------------------------------------------------------------------ #

    @property
    def members(self) -> MemberMap:
        """This member's view of the group."""
        return self._members

    @property
    def sync(self) -> SyncEngine:
        """The anti-entropy engine (push-pull, reconnect, merges)."""
        return self._sync

    @property
    def on_sync_merge(self) -> Optional[Callable[[int], None]]:
        """Hook observing the state changes each push-pull merge applied
        (feeds the ops plane's merge-size histogram)."""
        return self._sync.on_merge

    @on_sync_merge.setter
    def on_sync_merge(self, hook: Optional[Callable[[int], None]]) -> None:
        self._sync.on_merge = hook

    @property
    def local_health(self) -> LocalHealthMultiplier:
        """The Local Health Multiplier (always present; inert when
        LHA-Probe is disabled)."""
        return self._lhm

    @property
    def broadcasts(self) -> BroadcastQueue:
        return self._broadcasts

    @property
    def user_broadcasts(self) -> BroadcastQueue:
        return self._user_broadcasts

    @property
    def meta(self) -> bytes:
        """This member's application metadata."""
        return self._members.local.meta

    def set_meta(self, meta: bytes) -> None:
        """Update application metadata and gossip the change.

        A fresh incarnation makes the updated alive claim supersede the
        old one everywhere (memberlist's UpdateNode).
        """
        local = self._members.local
        self._members.set_local_meta(meta)
        self._members.bump_local_incarnation(local.incarnation)
        self._broadcasts.enqueue(
            Alive(local.incarnation, self.name, local.address, meta, local.zone)
        )

    def set_gossip_overlay(self, neighbors: Optional[Sequence[str]]) -> None:
        """Restrict the dedicated gossip tick to a fixed neighbor set.

        An exploration of the paper's Section VII future work ("adding a
        random overlay network" to tighten dissemination tails, after
        Jetstream): when set, dedicated gossip rounds target the given
        neighbors instead of uniformly random members. Probing,
        piggybacking and anti-entropy are unaffected. Pass ``None`` to
        restore uniform gossip.
        """
        if neighbors is None:
            self._overlay_neighbors = None
            return
        cleaned = [n for n in neighbors if n != self.name]
        if not cleaned:
            raise ValueError("overlay needs at least one neighbor")
        self._overlay_neighbors = list(cleaned)

    @property
    def gossip_overlay(self) -> Optional[List[str]]:
        return list(self._overlay_neighbors) if self._overlay_neighbors else None

    def broadcast_event(self, payload: bytes) -> UserEvent:
        """Disseminate an application event to the whole group.

        Returns the event; it is delivered to the local handler
        immediately and to every other member via gossip, exactly once
        each (deduplicated by origin and sequence number).
        """
        if len(payload) > codec.MAX_USER_PAYLOAD:
            raise codec.CodecError(
                f"user event payload too large: {len(payload)} > "
                f"{codec.MAX_USER_PAYLOAD}"
            )
        self._user_seq += 1
        event = UserEvent(self.name, self._user_seq, payload)
        self._remember_user_event(event.key)
        self._user_broadcasts.enqueue(event)
        if self._on_user_event is not None:
            self._on_user_event(event)
        return event

    @property
    def buddy(self) -> BuddyPiggybacker:
        return self._buddy

    def add_listener(self, listener: EventListener) -> None:
        """Register an additional membership-event listener.

        Listeners are invoked in registration order for every event; used
        by the ops plane to tee events into an
        :class:`~repro.ops.events.EventStream` without displacing the
        application's listener.
        """
        self._listeners.append(listener)

    @property
    def suspicion_count(self) -> int:
        """Entries currently in the local suspicion table."""
        return len(self._suspicions)

    def suspicion_subjects(self) -> List[str]:
        """Names with a live suspicion entry (inspection only)."""
        return list(self._suspicions)

    def suspicion_snapshot(self) -> List[dict]:
        """The live suspicion table as JSON-safe records (ops plane)."""
        now = self._clock()
        out = []
        for name, entry in self._suspicions.items():
            suspicion = entry.suspicion
            out.append(
                {
                    "member": name,
                    "confirmations": suspicion.confirmations,
                    "confirmers": sorted(suspicion.confirmers),
                    "k": suspicion.k,
                    "started_at": suspicion.started_at,
                    "deadline": suspicion.deadline(),
                    "remaining": suspicion.remaining(now),
                    "timeout": suspicion.current_timeout(),
                    "min_timeout": suspicion.minimum,
                    "max_timeout": suspicion.maximum,
                }
            )
        return out

    @property
    def incarnation(self) -> int:
        return self._members.local.incarnation

    @property
    def running(self) -> bool:
        return self._running

    def now(self) -> float:
        return self._clock()

    def note_reliable_send_failure(self, destination: str) -> None:
        """Transport feedback: a reliable send to ``destination`` failed
        after exhausting its retries.

        A single unreachable peer says nothing about *us* — it is probably
        just dead, and the probe cycle will find that out. But failures to
        ``reliable_failure_peer_threshold`` distinct peers within
        ``reliable_failure_window`` seconds point at the local member
        (overload, a dying NIC, an exhausted FD table) and are scored as
        one Local Health event, slowing our own probing the same way
        missed nacks do (an extension of Section IV-A's event table).
        """
        now = self._clock()
        window = self.config.reliable_failure_window
        self._reliable_failures[destination] = now
        stale = [
            address
            for address, failed_at in self._reliable_failures.items()
            if now - failed_at > window
        ]
        for address in stale:
            del self._reliable_failures[address]
        if len(self._reliable_failures) >= self.config.reliable_failure_peer_threshold:
            self._reliable_failures.clear()
            self.telemetry.transport.incr("reliable_failure_signals")
            self._lhm.note(LhmEvent.RELIABLE_SEND_FAILED)

    def current_probe_interval(self) -> float:
        """The LHM-scaled probe interval currently in effect."""
        return self._lhm.scale(self.config.probe_interval)

    def current_probe_timeout(self) -> float:
        """The LHM-scaled probe timeout currently in effect."""
        return self._lhm.scale(self.config.probe_timeout)

    def start(self, first_probe_delay: Optional[float] = None) -> None:
        """Begin running the protocol loops.

        ``first_probe_delay`` staggers the first probe tick; by default a
        uniform random fraction of the probe interval is used so that
        co-started members do not probe in lock-step.
        """
        if self._running:
            raise RuntimeError(f"node {self.name} already started")
        self._running = True
        now = self._clock()
        if first_probe_delay is None:
            first_probe_delay = self._rng.uniform(0, self.config.probe_interval)
        self._probe_timer = self._scheduler.call_at(
            now + first_probe_delay, self._probe_tick
        )
        if self.config.gossip_enabled:
            self._gossip_timer = self._scheduler.call_at(
                now + self._rng.uniform(0, self.config.gossip_interval),
                self._gossip_tick,
            )
        if self.config.push_pull_interval > 0:
            self._push_pull_timer = self._scheduler.call_at(
                now + self._rng.uniform(0, self.config.push_pull_interval),
                self._push_pull_tick,
            )
        if self.config.reconnect_interval > 0:
            self._reconnect_timer = self._scheduler.call_at(
                now + self._rng.uniform(0, self.config.reconnect_interval),
                self._reconnect_tick,
            )
        # A restarted node may remember SUSPECT members from before the
        # stop: stop() cancels and drops the suspicion timers but keeps
        # the member map. Re-arm a fresh suspicion for each so every
        # SUSPECT state has a timer that can expire or be refuted.
        for member in self._members.members():
            if (
                member.name == self.name
                or not member.is_suspect
                or member.name in self._suspicions
            ):
                continue
            minimum, maximum, k = self._suspicion_parameters()
            suspicion = Suspicion(self.name, now, minimum, maximum, k)
            entry = _SuspicionEntry(suspicion, None)
            self._suspicions[member.name] = entry
            entry.timer = self._scheduler.call_at(
                suspicion.deadline(),
                lambda name=member.name: self._suspicion_expired(name),
            )

    def set_paused(self, paused: bool) -> None:
        """Suspend or resume the periodic protocol loops.

        Models a process whose protocol goroutines are blocked on their
        first I/O operation (the paper's anomaly instrumentation, Section
        V-D): while paused, the probe, gossip, push-pull and reconnect
        ticks do not run — a blocked member initiates no new probes and
        transmits no gossip. One-shot timers (probe timeouts/deadlines
        and suspicion timeouts) keep firing, exactly as memberlist's
        ``time.AfterFunc`` timers do in separate goroutines; their state
        changes only become visible to peers once sending resumes.

        Deferred ticks run immediately on resume.
        """
        if paused == self._paused:
            return
        self._paused = paused
        if paused or not self._running:
            return
        now = self._clock()
        deferred, self._deferred_ticks = self._deferred_ticks, {}
        tick_fns = {
            "probe": self._probe_tick,
            "gossip": self._gossip_tick,
            "push_pull": self._push_pull_tick,
            "reconnect": self._reconnect_tick,
        }
        for name in deferred:
            self._scheduler.call_at(now, tick_fns[name])

    @property
    def paused(self) -> bool:
        return self._paused

    def _defer_if_paused(self, tick_name: str) -> bool:
        if self._paused:
            self._deferred_ticks[tick_name] = None
            return True
        return False

    def stop(self) -> None:
        """Halt all protocol activity (does not announce departure)."""
        self._running = False
        self._deferred_ticks.clear()
        for timer in (
            self._probe_timer,
            self._gossip_timer,
            self._push_pull_timer,
            self._reconnect_timer,
        ):
            if timer is not None:
                timer.cancel()
        self._probe_timer = self._gossip_timer = self._push_pull_timer = None
        self._reconnect_timer = None
        for probe in self._probes.values():
            for timer in (
                probe.timeout_timer,
                probe.indirect_timer,
                probe.deadline_timer,
            ):
                if timer is not None:
                    timer.cancel()
        self._probes.clear()
        for relay in self._relays.values():
            for timer in (relay.nack_timer, relay.expiry_timer):
                if timer is not None:
                    timer.cancel()
        self._relays.clear()
        for entry in self._suspicions.values():
            if entry.timer is not None:
                entry.timer.cancel()
        self._suspicions.clear()

    def join(self, seed_addresses: Sequence[str]) -> None:
        """Contact seed members and announce ourselves to the group."""
        local = self._members.local
        for address in seed_addresses:
            if address == self._transport.local_address:
                continue
            self._sync.offer_sync(address, join=True)
        self._broadcasts.enqueue(
            Alive(local.incarnation, self.name, local.address, local.meta, local.zone)
        )

    def apply_external_claim(
        self, name: str, state: MemberState, incarnation: int
    ) -> bool:
        """Ingest one membership claim from outside the packet path.

        Built for hierarchical layers (zone bridges) that learn about
        members through side channels: the claim runs through the exact
        merge-precedence and reaction machinery a gossiped claim would —
        including refutation when the claim wrongly declares *this* node
        SUSPECT or DEAD, which is the only way a member victimized while
        its zone could not tell it ever reclaims its liveness. Returns
        ``True`` when local state changed (or a refutation fired).
        """
        if not self._running:
            return False
        if state is MemberState.SUSPECT and name != self.name:
            # Suspicion must run through the timer machinery. Merging it
            # straight into the map would strand a SUSPECT entry whose
            # timer never fires, so the suspicion could neither expire
            # nor decay.
            self._handle_suspect(Suspect(incarnation, name, self.name))
            member = self._members.get(name)
            return member is not None and member.is_suspect
        decision = self._members.merge_claim(
            name, state, incarnation, self._clock()
        )
        return self._apply_merge_decision(decision, self.name)

    def leave(self) -> None:
        """Announce a graceful departure (a ``dead`` message about oneself
        is interpreted as LEFT by peers) and stop."""
        self._leaving = True
        local = self._members.local
        message = Dead(local.incarnation, self.name, self.name)
        self._broadcasts.enqueue(message)
        # Push the departure out immediately rather than waiting for the
        # next gossip tick.
        for member in self._members.random_members(
            self.config.gossip_fanout, now=self._clock()
        ):
            self._send_to_address(member.address, message, piggyback=False)
        self.stop()

    # ------------------------------------------------------------------ #
    # Inbound packets
    # ------------------------------------------------------------------ #

    def handle_packet(
        self, payload: codec.Buffer, from_address: str, reliable: bool = False
    ) -> None:
        """Entry point for the transport: decode and dispatch one packet.

        ``payload`` may be a ``memoryview`` into a transport-owned
        receive buffer that is reused after this call returns (the
        batched backend's zero-copy path); decoding materialises
        everything the node keeps, so nothing aliases the buffer."""
        if not self._running:
            return
        self.telemetry.record_receive(len(payload))
        try:
            message = codec.decode(payload)
        except codec.CodecError:
            return
        self._dispatch(message, from_address, reliable)

    def _dispatch(self, message: Message, from_address: str, reliable: bool) -> None:
        # Ordered by observed frequency: gossip parts dominate packets
        # during churn, which is when simulation throughput matters.
        kind = type(message)
        if kind is Suspect:
            self._handle_suspect(message)
        elif kind is Alive:
            self._handle_alive(message)
        elif kind is Dead:
            self._handle_dead(message)
        elif kind is Ping:
            self._handle_ping(message, from_address, reliable)
        elif kind is Ack:
            self._handle_ack(message, reliable)
        elif kind is Compound:
            for part in message.parts:
                self._dispatch(part, from_address, reliable)
        elif kind is UserEvent:
            self._handle_user_event(message)
        elif kind is PingReq:
            self._handle_ping_req(message, from_address)
        elif kind is Nack:
            self._handle_nack(message)
        elif kind is PushPull:
            self._handle_push_pull(message, from_address)

    # ------------------------------------------------------------------ #
    # Failure detector: probing
    # ------------------------------------------------------------------ #

    def _probe_tick(self) -> None:
        if not self._running or self._defer_if_paused("probe"):
            return
        now = self._clock()
        interval = self.current_probe_interval()
        self._probe_timer = self._scheduler.call_at(now + interval, self._probe_tick)
        self._members.reclaim_dead(now, self.config.dead_member_reclaim)
        target = self._members.next_probe_target(now)
        if target is not None:
            self._begin_probe(target, interval)

    def _begin_probe(self, target: Member, interval: float) -> None:
        now = self._clock()
        seq_no = self._next_seq()
        probe = _Probe(seq_no, target.name, now)
        self._probes[seq_no] = probe
        timeout = self.current_probe_timeout()
        probe.timeout_timer = self._scheduler.call_at(
            now + timeout, lambda: self._probe_timeout(probe)
        )
        probe.deadline_timer = self._scheduler.call_at(
            now + interval, lambda: self._probe_deadline(probe)
        )
        self._send_ping(target, seq_no)

    def _send_ping(
        self, target: Member, seq_no: int, reliable: bool = False
    ) -> None:
        ping = Ping(seq_no, target.name, self.name)
        mandatory = self._buddy.payloads_for_ping(target.name)
        self._send_to_address(
            target.address, ping, reliable=reliable, mandatory_piggyback=mandatory
        )

    def _probe_timeout(self, probe: _Probe) -> None:
        """Direct probe timed out: fire the reliable-channel fallback
        first (memberlist's TCP ping), then — after a short grace window —
        the indirect ping-req round.

        The staging keeps pure UDP loss away from the suspicion
        subprotocol: a healthy-but-datagram-unlucky peer answers the
        fallback within the grace window, completing the probe before any
        helper is enlisted. With the fallback disabled the indirect round
        engages immediately, exactly as plain SWIM prescribes.
        """
        probe.timeout_timer = None
        if probe.acked or probe.seq_no not in self._probes:
            return
        target = self._members.get(probe.target)
        if target is None or target.is_dead:
            return
        if self._fallback.enabled:
            probe.fallback_sent = True
            self._fallback.note_sent()
            self._send_ping(target, probe.seq_no, reliable=True)
            delay = self._fallback.stage_delay(self.current_probe_timeout())
            if delay > 0:
                probe.indirect_timer = self._scheduler.call_at(
                    self._clock() + delay,
                    lambda: self._launch_indirect_probe(probe),
                )
                return
        self._launch_indirect_probe(probe)

    def _launch_indirect_probe(self, probe: _Probe) -> None:
        """Enlist ping-req helpers for a probe still unanswered."""
        probe.indirect_timer = None
        if probe.acked or probe.seq_no not in self._probes:
            return
        target = self._members.get(probe.target)
        if target is None or target.is_dead:
            return
        helpers = self._members.random_members(
            self.config.indirect_probes,
            exclude=(probe.target,),
            include_suspect=False,
        )
        want_nack = self.config.flags.lha_probe
        for helper in helpers:
            request = PingReq(probe.seq_no, probe.target, self.name, want_nack)
            self._send_to_address(helper.address, request)
        if want_nack:
            probe.expected_nacks = len(helpers)

    def _probe_deadline(self, probe: _Probe) -> None:
        """End of the protocol period for this probe: declare the outcome."""
        probe.deadline_timer = None
        if probe.indirect_timer is not None:
            probe.indirect_timer.cancel()
            probe.indirect_timer = None
        if self._probes.pop(probe.seq_no, None) is None:
            return
        if probe.acked:
            return
        if probe.fallback_sent:
            self._fallback.note_failure()
        # Failed probe. Local-health accounting first (Section IV-A): when
        # nacks were expected, each *missing* nack is evidence of local
        # slowness; when every helper nacked, the evidence points at the
        # target, not at us, so the LHM is left unchanged (memberlist
        # semantics). With no helpers enlisted the failure itself scores 1.
        if probe.expected_nacks > 0:
            missed = probe.expected_nacks - probe.nacks_received
            for _ in range(missed):
                self._lhm.note(LhmEvent.MISSED_NACK)
        else:
            self._lhm.note(LhmEvent.PROBE_FAILED)
        target = self._members.get(probe.target)
        if target is None or target.is_dead:
            return
        self._handle_suspect(Suspect(target.incarnation, target.name, self.name))

    def _handle_ping(self, ping: Ping, from_address: str, reliable: bool) -> None:
        if ping.target != self.name:
            # Stale addressing (e.g. a name reused across restarts).
            return
        ack = Ack(ping.seq_no, self.name)
        self._send_to_address(from_address, ack, reliable=reliable)

    def _handle_ping_req(self, request: PingReq, from_address: str) -> None:
        target = self._members.get(request.target)
        if target is None or target.is_dead:
            # We cannot help; with nacks enabled, staying silent correctly
            # signals nothing about our own health (the origin counts a
            # missed nack, which is the conservative outcome).
            return
        local_seq = self._next_seq()
        relay = _IndirectRelay(request.seq_no, from_address, request.want_nack)
        self._relays[local_seq] = relay
        now = self._clock()
        if request.want_nack:
            nack_at = now + self.config.probe_timeout * self.config.nack_timeout_fraction
            relay.nack_timer = self._scheduler.call_at(
                nack_at, lambda: self._relay_nack(local_seq)
            )
        relay.expiry_timer = self._scheduler.call_at(
            now + 2 * self.config.probe_interval,
            lambda: self._expire_relay(local_seq),
        )
        self._send_ping(target, local_seq)

    def _relay_nack(self, local_seq: int) -> None:
        relay = self._relays.get(local_seq)
        if relay is None:
            return
        relay.nack_timer = None
        nack = Nack(relay.origin_seq, self.name)
        self._send_to_address(relay.origin_address, nack)

    def _expire_relay(self, local_seq: int) -> None:
        relay = self._relays.pop(local_seq, None)
        if relay is not None and relay.nack_timer is not None:
            relay.nack_timer.cancel()

    def _handle_ack(self, ack: Ack, reliable: bool = False) -> None:
        probe = self._probes.get(ack.seq_no)
        if probe is not None:
            if not probe.acked:
                now = self._clock()
                # A still-pending timeout timer means the ack beat the
                # probe timeout: it came over the direct path (indirect
                # helpers and the reliable fallback only launch when the
                # timeout fires), so it is a clean peer-RTT observation.
                # The transport channel must agree: an ack that arrived
                # over the reliable (TCP) channel measures the fallback
                # detour, never the UDP round trip, no matter how the
                # delivery raced the timeout timer.
                if probe.timeout_timer is not None and not reliable:
                    rtt = now - probe.started_at
                    self._probe_scheduler.note_ack(probe.target, rtt, now)
                    if self.on_probe_rtt is not None:
                        self.on_probe_rtt(probe.target, rtt)
                self._probe_scheduler.note_confirmation(probe.target, now)
                if reliable and probe.fallback_sent:
                    self._fallback.note_ack()
                probe.acked = True
                self._lhm.note(LhmEvent.PROBE_SUCCESS)
                if probe.timeout_timer is not None:
                    probe.timeout_timer.cancel()
                    probe.timeout_timer = None
                if probe.indirect_timer is not None:
                    probe.indirect_timer.cancel()
                    probe.indirect_timer = None
                if probe.deadline_timer is not None:
                    probe.deadline_timer.cancel()
                    probe.deadline_timer = None
                self._probes.pop(ack.seq_no, None)
            return
        relay = self._relays.pop(ack.seq_no, None)
        if relay is not None:
            # Forward even if we already nacked: the origin treats
            # nack-then-ack within its timeout as success (Section IV-A).
            if relay.nack_timer is not None:
                relay.nack_timer.cancel()
            if relay.expiry_timer is not None:
                relay.expiry_timer.cancel()
            self._send_to_address(relay.origin_address, Ack(relay.origin_seq, ack.source))

    def _handle_nack(self, nack: Nack) -> None:
        probe = self._probes.get(nack.seq_no)
        if probe is not None:
            probe.nacks_received += 1

    # ------------------------------------------------------------------ #
    # Suspicion subprotocol
    # ------------------------------------------------------------------ #

    def _is_suspected(self, name: str) -> bool:
        member = self._members.get(name)
        return member is not None and member.is_suspect

    def _encode_local_suspicion(self, name: str) -> Optional[bytes]:
        member = self._members.get(name)
        if member is None or not member.is_suspect:
            return None
        return codec.encode(Suspect(member.incarnation, name, self.name))

    def _suspicion_parameters(self) -> tuple:
        """``(min, max, k)`` for a new suspicion, honouring LHA-Suspicion."""
        flags = self.config.flags
        beta = self.config.suspicion_beta if flags.lha_suspicion else 1.0
        minimum, maximum = suspicion_bounds(
            self.config.suspicion_alpha,
            beta,
            len(self._members),
            self.config.probe_interval,
        )
        k = self.config.suspicion_k if flags.lha_suspicion else 0
        # A tiny cluster cannot produce K independent suspicions; fall
        # back to the fixed minimum timeout (memberlist guard).
        available_confirmers = self._members.num_alive() - 2
        if k > max(0, available_confirmers):
            k = max(0, available_confirmers)
        if k == 0:
            maximum = minimum
        return minimum, maximum, k

    def _handle_suspect(self, message: Suspect) -> None:
        if message.member == self.name:
            self._refute(message.incarnation)
            return
        member = self._members.get(message.member)
        if member is None or member.is_dead:
            return
        if message.incarnation < member.incarnation:
            return
        now = self._clock()
        entry = self._suspicions.get(message.member)
        if entry is not None:
            if entry.suspicion.confirm(message.sender):
                # A new independent suspicion within the first K: re-gossip
                # it and shrink the timeout (LHA-Suspicion, Section IV-B).
                self._broadcasts.enqueue(message)
                self._reschedule_suspicion(message.member)
            if message.incarnation > member.incarnation:
                self._members.merge_claim(
                    message.member, MemberState.SUSPECT, message.incarnation, now
                )
            return
        decision = self._members.merge_claim(
            message.member, MemberState.SUSPECT, message.incarnation, now
        )
        if decision.action != MERGE_APPLIED and not member.is_suspect:
            return
        # Fall through when the member is already SUSPECT but has no
        # suspicion entry (the claim itself cannot supersede an equal-
        # incarnation suspect state): without a timer the suspicion could
        # never expire. Happens after a restart, which drops the timer
        # table but keeps the member map.
        minimum, maximum, k = self._suspicion_parameters()
        suspicion = Suspicion(message.sender, now, minimum, maximum, k)
        entry = _SuspicionEntry(suspicion, None)
        self._suspicions[message.member] = entry
        entry.timer = self._scheduler.call_at(
            suspicion.deadline(), lambda: self._suspicion_expired(message.member)
        )
        self._emit(EventKind.SUSPECTED, message.member, message.incarnation, now)
        # Gossip the suspicion onward, preserving the originator so peers
        # can count independence.
        self._broadcasts.enqueue(
            Suspect(message.incarnation, message.member, message.sender)
        )

    def _reschedule_suspicion(self, name: str) -> None:
        entry = self._suspicions.get(name)
        if entry is None:
            return
        if entry.timer is not None:
            entry.timer.cancel()
            entry.timer = None
        now = self._clock()
        deadline = entry.suspicion.deadline()
        if deadline <= now:
            self._suspicion_expired(name)
        else:
            entry.timer = self._scheduler.call_at(
                deadline, lambda: self._suspicion_expired(name)
            )

    def _suspicion_expired(self, name: str) -> None:
        entry = self._suspicions.pop(name, None)
        if entry is None:
            return
        if entry.timer is not None:
            entry.timer.cancel()
            entry.timer = None
        member = self._members.get(name)
        if member is None or not member.is_suspect:
            return
        now = self._clock()
        incarnation = member.incarnation
        self._members.apply_claim(name, MemberState.DEAD, incarnation, now)
        self._emit(EventKind.FAILED, name, incarnation, now)
        self._broadcasts.enqueue(Dead(incarnation, name, self.name))

    def _cancel_suspicion(self, name: str) -> None:
        entry = self._suspicions.pop(name, None)
        if entry is not None and entry.timer is not None:
            entry.timer.cancel()

    def _refute(self, claimed_incarnation: int) -> None:
        """Answer a suspect/dead claim about ourselves with a fresher
        ``alive``, and note the local-health implication (Section IV-A)."""
        local = self._members.local
        if claimed_incarnation < local.incarnation:
            # Stale claim about an incarnation we already superseded.
            return
        new_incarnation = self._members.bump_local_incarnation(claimed_incarnation)
        self._lhm.note(LhmEvent.REFUTE_SELF)
        self._broadcasts.enqueue(
            Alive(new_incarnation, self.name, local.address, local.meta, local.zone)
        )

    # ------------------------------------------------------------------ #
    # Gossip claim handlers
    # ------------------------------------------------------------------ #

    def _handle_alive(self, message: Alive) -> None:
        if message.member == self.name:
            return
        member = self._members.get(message.member)
        if member is not None and message.incarnation <= member.incarnation:
            # Fast path: an alive claim only ever lands with a strictly
            # newer incarnation, and duplicates dominate gossip traffic.
            return
        decision = self._members.merge_claim(
            message.member,
            MemberState.ALIVE,
            message.incarnation,
            self._clock(),
            address=message.address,
            meta=message.meta,
            zone=message.zone,
        )
        self._apply_merge_decision(decision, message.member)

    _MAX_SEEN_USER_EVENTS = 4096

    def _remember_user_event(self, key: tuple) -> None:
        self._seen_user_events[key] = None
        if len(self._seen_user_events) > self._MAX_SEEN_USER_EVENTS:
            # Dicts preserve insertion order: drop the oldest entry.
            self._seen_user_events.pop(next(iter(self._seen_user_events)))

    def _handle_user_event(self, message: UserEvent) -> None:
        if message.key in self._seen_user_events:
            return
        self._remember_user_event(message.key)
        self._user_broadcasts.enqueue(message)
        if self._on_user_event is not None:
            self._on_user_event(message)

    def _handle_dead(self, message: Dead) -> None:
        if message.member == self.name:
            if not self._leaving:
                self._refute(message.incarnation)
            return
        member = self._members.get(message.member)
        if member is None:
            return
        if member.is_dead and message.incarnation <= member.incarnation:
            # Fast path: already dead at this or a newer incarnation.
            return
        is_leave = message.sender == message.member
        new_state = MemberState.LEFT if is_leave else MemberState.DEAD
        decision = self._members.merge_claim(
            message.member, new_state, message.incarnation, self._clock()
        )
        self._apply_merge_decision(decision, message.sender)

    def _apply_merge_decision(self, decision: MergeDecision, origin: str) -> bool:
        """Shared reaction layer behind gossip and anti-entropy sync.

        Translates one :class:`MergeDecision` (the table mutation already
        happened inside :class:`MemberMap`) into protocol side effects:
        membership events, suspicion bookkeeping, re-broadcast of the
        winning claim, and refutation of claims about the local member.
        ``origin`` attributes SUSPECT/DEAD claims to the member whose
        message carried them. Returns ``True`` when local state changed.
        """
        now = self._clock()
        name = decision.name
        if decision.action == MERGE_LOCAL:
            if decision.state in (MemberState.SUSPECT, MemberState.DEAD):
                self._refute(decision.incarnation)
                return True
            return False
        if decision.action == MERGE_SUSPECT:
            # Route through the full suspicion machinery (confirmation
            # counting, decaying timers) exactly as a gossiped suspect
            # claim would be.
            if decision.previous_state is None:
                self._emit(EventKind.JOINED, name, decision.incarnation, now)
            self._handle_suspect(Suspect(decision.incarnation, name, origin))
            member = self._members.get(name)
            became_suspect = (
                member is not None
                and member.is_suspect
                and decision.previous_state is not MemberState.SUSPECT
            )
            return decision.previous_state is None or became_suspect
        if decision.action == MERGE_ADDED:
            member = self._members.get(name)
            assert member is not None
            self._emit(EventKind.JOINED, name, decision.incarnation, now)
            self._broadcasts.enqueue(
                Alive(
                    decision.incarnation, name, member.address, member.meta,
                    member.zone,
                )
            )
            return True
        if decision.action != MERGE_APPLIED:
            return False
        self._cancel_suspicion(name)
        if decision.state is MemberState.ALIVE:
            member = self._members.get(name)
            assert member is not None
            if decision.previous_state in (
                MemberState.SUSPECT,
                MemberState.DEAD,
                MemberState.LEFT,
            ):
                self._emit(EventKind.RESTORED, name, decision.incarnation, now)
            elif decision.meta_changed:
                self._emit(EventKind.UPDATED, name, decision.incarnation, now)
            self._broadcasts.enqueue(
                Alive(
                    decision.incarnation, name, member.address, member.meta,
                    member.zone,
                )
            )
            return True
        is_leave = decision.state is MemberState.LEFT
        kind = EventKind.LEFT if is_leave else EventKind.FAILED
        self._emit(kind, name, decision.incarnation, now)
        self._broadcasts.enqueue(
            Dead(decision.incarnation, name, name if is_leave else origin)
        )
        return True

    # ------------------------------------------------------------------ #
    # Dedicated gossip tick (memberlist extension)
    # ------------------------------------------------------------------ #

    def _gossip_tick(self) -> None:
        if not self._running or not self.config.gossip_enabled:
            return
        if self._defer_if_paused("gossip"):
            return
        now = self._clock()
        self._gossip_timer = self._scheduler.call_at(
            now + self.config.gossip_interval, self._gossip_tick
        )
        if not (self._broadcasts.pending or self._user_broadcasts.pending):
            return
        targets = self._gossip_targets(now)
        for target in targets:
            budget = self.config.max_packet_size - codec.COMPOUND_HEADER_OVERHEAD
            payloads = self._broadcasts.get_payloads(
                budget, codec.COMPOUND_PART_OVERHEAD
            )
            remaining = budget - sum(
                len(p) + codec.COMPOUND_PART_OVERHEAD for p in payloads
            )
            if remaining > 0:
                payloads.extend(
                    self._user_broadcasts.get_payloads(
                        remaining, codec.COMPOUND_PART_OVERHEAD
                    )
                )
            if not payloads:
                break
            packet = self._pack_gossip_only(payloads)
            self.telemetry.record_send("gossip", len(packet))
            self._transport.send(target.address, packet)

    def _gossip_targets(self, now: float) -> List[Member]:
        """Targets for one dedicated gossip round: uniformly random
        members, or the configured overlay neighbors (still honouring
        liveness and the gossip-to-the-dead window)."""
        if self._overlay_neighbors is None:
            return self._members.random_members(
                self.config.gossip_fanout,
                gossip_to_dead_within=self.config.gossip_to_dead,
                now=now,
            )
        candidates: List[Member] = []
        for name in self._overlay_neighbors:
            member = self._members.get(name)
            if member is None:
                continue
            if member.is_alive or member.is_suspect:
                candidates.append(member)
            elif (
                member.is_dead
                and now - member.state_changed_at <= self.config.gossip_to_dead
            ):
                candidates.append(member)
        if len(candidates) <= self.config.gossip_fanout:
            return candidates
        return self._rng.sample(candidates, self.config.gossip_fanout)

    @staticmethod
    def _pack_gossip_only(payloads: List[bytes]) -> bytes:
        if len(payloads) == 1:
            return payloads[0]
        out = [bytes((codec.T_COMPOUND,)), struct.pack(">H", len(payloads))]
        for raw in payloads:
            out.append(struct.pack(">H", len(raw)))
            out.append(raw)
        return b"".join(out)

    # ------------------------------------------------------------------ #
    # Anti-entropy push/pull (memberlist extension)
    # ------------------------------------------------------------------ #

    def _push_pull_tick(self) -> None:
        if not self._running or self._defer_if_paused("push_pull"):
            return
        now = self._clock()
        self._push_pull_timer = self._scheduler.call_at(
            now + self.config.push_pull_interval, self._push_pull_tick
        )
        self._sync.push_pull_round()

    def _reconnect_tick(self) -> None:
        if not self._running or self._defer_if_paused("reconnect"):
            return
        now = self._clock()
        self._reconnect_timer = self._scheduler.call_at(
            now + self.config.reconnect_interval, self._reconnect_tick
        )
        self._sync.reconnect_round()

    def _handle_push_pull(self, message: PushPull, from_address: str) -> None:
        self._sync.handle_push_pull(message, from_address)

    def _send_sync(self, address: str, message: PushPull) -> None:
        """Reliable, piggyback-free send used by the sync engine."""
        self._send_to_address(address, message, reliable=True, piggyback=False)

    # ------------------------------------------------------------------ #
    # Outbound helpers
    # ------------------------------------------------------------------ #

    def _send_to_address(
        self,
        address: str,
        primary: Message,
        reliable: bool = False,
        piggyback: bool = True,
        mandatory_piggyback: Sequence[bytes] = (),
    ) -> None:
        payloads: List[bytes] = list(mandatory_piggyback)
        encoded_primary = codec.encode(primary)
        if piggyback and self.config.gossip_enabled:
            budget = (
                self.config.max_packet_size
                - codec.COMPOUND_HEADER_OVERHEAD
                - codec.COMPOUND_PART_OVERHEAD
                - len(encoded_primary)
                - sum(len(p) + codec.COMPOUND_PART_OVERHEAD for p in payloads)
            )
            if budget > 0:
                selected = self._broadcasts.get_payloads(
                    budget, codec.COMPOUND_PART_OVERHEAD
                )
                budget -= sum(
                    len(p) + codec.COMPOUND_PART_OVERHEAD for p in selected
                )
                payloads.extend(selected)
                if budget > 0:
                    payloads.extend(
                        self._user_broadcasts.get_payloads(
                            budget, codec.COMPOUND_PART_OVERHEAD
                        )
                    )
        scratch = self._packet_scratch
        if scratch is not None and not reliable:
            # Buffer-reusing fast path: the transport copies before
            # returning, so one scratch serves every datagram send.
            del scratch[:]
            n = codec.pack_encoded_with_piggyback_into(
                encoded_primary, payloads, scratch
            )
            self.telemetry.record_send(primary_kind(primary), n, reliable)
            self._transport.send(address, scratch, reliable=False)
            return
        packet = codec.pack_encoded_with_piggyback(encoded_primary, payloads)
        self.telemetry.record_send(primary_kind(primary), len(packet), reliable)
        self._transport.send(address, packet, reliable=reliable)

    def _next_seq(self) -> int:
        self._seq = (self._seq + 1) % _SEQ_MODULUS
        return self._seq

    def _emit(self, kind: EventKind, subject: str, incarnation: int, now: float) -> None:
        if self._listeners:
            event = MemberEvent(now, self.name, subject, kind, incarnation)
            for listener in self._listeners:
                listener(event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SwimNode({self.name!r}, members={len(self._members)}, "
            f"lhm={self._lhm.score})"
        )
