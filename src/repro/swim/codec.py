"""Compact binary wire format.

The message-load experiment (Table VI) measures *bytes sent*, so the codec
matters: it must produce realistically compact packets, the way memberlist
does with msgpack. We use a hand-rolled struct-based format that is within
a few bytes of msgpack for these message shapes:

* 1 type byte;
* integers as fixed-width big-endian (u32 for sequence numbers, u64 for
  incarnations);
* strings as ``u8 length + UTF-8 bytes`` (member names / addresses are
  short);
* compound: type byte, u16 part count, then each part as
  ``u16 length + encoded part``.

Encoding and decoding round-trip exactly; a corrupt or truncated packet
raises :class:`CodecError` rather than yielding garbage.

:func:`decode` accepts ``bytes``, ``bytearray`` or ``memoryview`` input.
For buffer (non-``bytes``) input it slices without copying until string
materialization: integers are unpacked straight off the view, and only
the string/bytes *fields* of the resulting message are materialized (a
``str``/``bytes`` object has to own its storage anyway). This is what
lets the batched transport (:mod:`repro.transport.fastudp`) hand decode
views into its reusable receive buffers — nothing in a decoded
:class:`Message` aliases the underlying buffer, so the buffer can be
reused for the next syscall immediately. The differential suite
(``tests/swim/test_codec_equivalence.py``) pins both paths to identical
messages *and* identical :class:`CodecError` behavior.

:func:`encode_into` is the allocation-lean sibling of :func:`encode`:
it appends the identical bytes to a caller-owned ``bytearray`` scratch
buffer, so steady-state probe/ack senders can reuse one buffer instead
of allocating a fresh ``bytes`` per packet.
"""

from __future__ import annotations

import struct
from typing import List, Tuple, Union

from repro.swim.messages import (
    Ack,
    Alive,
    Compound,
    Dead,
    Message,
    Nack,
    Ping,
    PingReq,
    PushPull,
    Suspect,
    UserEvent,
    ZoneClaim,
    ZoneDigest,
)

# Wire type tags.
T_PING = 0x01
T_PING_REQ = 0x02
T_ACK = 0x03
T_NACK = 0x04
T_SUSPECT = 0x05
T_ALIVE = 0x06
T_DEAD = 0x07
T_PUSH_PULL = 0x08
T_COMPOUND = 0x09
T_USER_EVENT = 0x0A
# Hierarchical zones (repro.zones). A zoneless Alive still encodes as
# T_ALIVE, so flat-cluster traffic is byte-identical to earlier versions.
T_ALIVE_Z = 0x0B
T_ZONE_DIGEST = 0x0C
T_ZONE_CLAIM = 0x0D

#: Application metadata limit per member (memberlist's MetaMaxSize).
MAX_META_SIZE = 512
#: User event payload limit (fits comfortably in one UDP packet).
MAX_USER_PAYLOAD = 1024

_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
#: Fused incarnation + state tag of a push-pull state entry.
_U64_U8 = struct.Struct(">QB")
#: Fused incarnation + state tag + meta length (decode side).
_U64_U8_U16 = struct.Struct(">QBH")
#: Fused incarnation + state tag + meta length + age for the dominant
#: empty-meta encode case (identical bytes to packing the four fields
#: separately with a zero-length meta body).
_U64_U8_U16_U32 = struct.Struct(">QBHI")
#: Fixed body of a zone digest: four u32 state counts, the zone's max
#: incarnation and a u64 hash of its membership view.
_ZONE_DIGEST_BODY = struct.Struct(">IIIIQQ")

# Pre-bound struct methods: the push-pull encode/decode loops run once
# per state entry per sync round, where attribute lookups on the Struct
# objects are measurable.
_pack_u16 = _U16.pack
_pack_u32 = _U32.pack
_pack_u64 = _U64.pack
_unpack_u16_from = _U16.unpack_from
_unpack_u32_from = _U32.unpack_from
_unpack_u64_from = _U64.unpack_from
_unpack_u64_u8_from = _U64_U8.unpack_from
_unpack_entry_head_from = _U64_U8_U16.unpack_from
_pack_entry_tail = _U64_U8_U16_U32.pack

# Member names and addresses recur across every push-pull snapshot and
# gossip burst; decoding (and validating) the same short UTF-8 string
# thousands of times per virtual second is pure waste. Keyed by the raw
# bytes; values are the decoded strings (identical value, so behavior is
# unchanged).
_STR_CACHE: dict = {}
_STR_CACHE_LIMIT = 4096

#: Encode-side mirror of :data:`_STR_CACHE`: string -> its length-prefixed
#: UTF-8 wire form. Strings longer than 255 encoded bytes are never
#: cached (they raise instead).
_STR_ENC_CACHE: dict = {}


class CodecError(ValueError):
    """Raised when a packet cannot be decoded."""


#: Anything :func:`decode` accepts. ``bytes`` is the classic path;
#: ``bytearray``/``memoryview`` take the zero-copy path.
Buffer = Union[bytes, bytearray, memoryview]


def _put_str(out: List[bytes], value: str) -> None:
    raw = value.encode("utf-8")
    if len(raw) > 255:
        raise CodecError(f"string too long for wire format: {len(raw)} bytes")
    out.append(bytes((len(raw),)))
    out.append(raw)


def _put_bytes(out: List[bytes], value: bytes, limit: int) -> None:
    if len(value) > limit:
        raise CodecError(f"byte field too long: {len(value)} > {limit}")
    out.append(_U16.pack(len(value)))
    out.append(value)


def _get_bytes(buf: Buffer, offset: int) -> Tuple[bytes, int]:
    length, offset = _get_u16(buf, offset)
    end = offset + length
    if end > len(buf):
        raise CodecError("truncated byte field")
    data = buf[offset:end]
    # A slice of a memoryview aliases the (possibly reused) underlying
    # buffer; message fields must own their storage.
    if data.__class__ is not bytes:
        data = bytes(data)
    return data, end


def _get_str(buf: Buffer, offset: int) -> Tuple[str, int]:
    if offset >= len(buf):
        raise CodecError("truncated string length")
    length = buf[offset]
    offset += 1
    end = offset + length
    if end > len(buf):
        raise CodecError("truncated string body")
    raw = buf[offset:end]
    try:
        # str(view, "utf-8") materializes straight from the buffer (and
        # raises the same UnicodeDecodeError bytes.decode would).
        text = raw.decode("utf-8") if raw.__class__ is bytes else str(raw, "utf-8")
    except UnicodeDecodeError as exc:
        raise CodecError(f"invalid UTF-8 in string: {exc}") from exc
    return text, end


def encode(message: Message) -> bytes:
    """Encode any protocol message to its wire representation."""
    out: List[bytes] = []
    _encode_into(message, out)
    return b"".join(out)


def encode_into(message: Message, out: bytearray) -> int:
    """Append ``message``'s wire form to ``out``; returns bytes appended.

    The appended bytes are pinned byte-identical to :func:`encode` (both
    run the same piece generator; this one skips the final ``join``
    allocation by extending the caller's scratch buffer instead). A
    steady-state sender clears and reuses one ``bytearray`` per packet —
    see :meth:`repro.transport.fastudp.BatchedUdpTransport.send_encoded`.
    """
    pieces: List[bytes] = []
    _encode_into(message, pieces)
    before = len(out)
    for piece in pieces:
        out += piece
    return len(out) - before


def _encode_into(message: Message, out: List[bytes]) -> None:
    if isinstance(message, Ping):
        out.append(bytes((T_PING,)))
        out.append(_U32.pack(message.seq_no))
        _put_str(out, message.target)
        _put_str(out, message.source)
    elif isinstance(message, PingReq):
        out.append(bytes((T_PING_REQ,)))
        out.append(_U32.pack(message.seq_no))
        _put_str(out, message.target)
        _put_str(out, message.source)
        out.append(b"\x01" if message.want_nack else b"\x00")
    elif isinstance(message, Ack):
        out.append(bytes((T_ACK,)))
        out.append(_U32.pack(message.seq_no))
        _put_str(out, message.source)
    elif isinstance(message, Nack):
        out.append(bytes((T_NACK,)))
        out.append(_U32.pack(message.seq_no))
        _put_str(out, message.source)
    elif isinstance(message, Suspect):
        out.append(bytes((T_SUSPECT,)))
        out.append(_U64.pack(message.incarnation))
        _put_str(out, message.member)
        _put_str(out, message.sender)
    elif isinstance(message, Alive):
        if message.zone:
            out.append(bytes((T_ALIVE_Z,)))
            out.append(_U64.pack(message.incarnation))
            _put_str(out, message.member)
            _put_str(out, message.address)
            _put_bytes(out, message.meta, MAX_META_SIZE)
            _put_str(out, message.zone)
        else:
            out.append(bytes((T_ALIVE,)))
            out.append(_U64.pack(message.incarnation))
            _put_str(out, message.member)
            _put_str(out, message.address)
            _put_bytes(out, message.meta, MAX_META_SIZE)
    elif isinstance(message, Dead):
        out.append(bytes((T_DEAD,)))
        out.append(_U64.pack(message.incarnation))
        _put_str(out, message.member)
        _put_str(out, message.sender)
    elif isinstance(message, UserEvent):
        out.append(bytes((T_USER_EVENT,)))
        _put_str(out, message.origin)
        out.append(_U32.pack(message.seq_no))
        _put_bytes(out, message.payload, MAX_USER_PAYLOAD)
    elif isinstance(message, PushPull):
        out.append(bytes((T_PUSH_PULL,)))
        _put_str(out, message.source)
        flags = (1 if message.join else 0) | (2 if message.is_reply else 0)
        out.append(bytes((flags,)))
        if len(message.states) > 0xFFFF:
            raise CodecError("too many states in push-pull")
        append = out.append
        append(_pack_u16(len(message.states)))
        pack_fixed = _U64_U8.pack
        pack_tail = _pack_entry_tail
        enc_cache = _STR_ENC_CACHE
        for entry in message.states:
            name, address, incarnation, state_value = entry[:4]
            meta = entry[4] if len(entry) > 4 else b""
            age_ms = entry[5] if len(entry) > 5 else 0
            # Member names/addresses recur across every snapshot; cache
            # their length-prefixed wire form keyed by the string itself.
            prefixed = enc_cache.get(name)
            if prefixed is None:
                raw = name.encode("utf-8")
                if len(raw) > 255:
                    raise CodecError(
                        f"string too long for wire format: {len(raw)} bytes"
                    )
                prefixed = bytes((len(raw),)) + raw
                if len(enc_cache) >= _STR_CACHE_LIMIT:
                    enc_cache.clear()
                enc_cache[name] = prefixed
            append(prefixed)
            prefixed = enc_cache.get(address)
            if prefixed is None:
                raw = address.encode("utf-8")
                if len(raw) > 255:
                    raise CodecError(
                        f"string too long for wire format: {len(raw)} bytes"
                    )
                prefixed = bytes((len(raw),)) + raw
                if len(enc_cache) >= _STR_CACHE_LIMIT:
                    enc_cache.clear()
                enc_cache[address] = prefixed
            append(prefixed)
            # State age in milliseconds, saturating at the u32 ceiling
            # (~49 days) so arbitrarily old entries still encode.
            if not meta:
                # Dominant case: no application metadata. One fused pack
                # for incarnation + state + metalen(0) + age.
                append(
                    pack_tail(
                        incarnation,
                        state_value,
                        0,
                        min(max(int(age_ms), 0), 0xFFFFFFFF),
                    )
                )
                continue
            append(pack_fixed(incarnation, state_value))
            if len(meta) > MAX_META_SIZE:
                raise CodecError(
                    f"byte field too long: {len(meta)} > {MAX_META_SIZE}"
                )
            append(_pack_u16(len(meta)))
            append(meta)
            append(_pack_u32(min(max(int(age_ms), 0), 0xFFFFFFFF)))
    elif isinstance(message, ZoneDigest):
        out.append(bytes((T_ZONE_DIGEST,)))
        _put_str(out, message.zone)
        _put_str(out, message.source)
        out.append(
            _ZONE_DIGEST_BODY.pack(
                message.alive,
                message.suspect,
                message.dead,
                message.left,
                message.max_incarnation,
                message.view_hash,
            )
        )
    elif isinstance(message, ZoneClaim):
        out.append(bytes((T_ZONE_CLAIM,)))
        _put_str(out, message.zone)
        _put_str(out, message.member)
        out.append(_U64_U8.pack(message.incarnation, message.state_value))
    elif isinstance(message, Compound):
        out.append(bytes((T_COMPOUND,)))
        if len(message.parts) > 0xFFFF:
            raise CodecError("too many parts in compound")
        out.append(_U16.pack(len(message.parts)))
        for part in message.parts:
            encoded = encode(part)
            out.append(_U16.pack(len(encoded)))
            out.append(encoded)
    else:
        raise CodecError(f"cannot encode {type(message).__name__}")


# Gossip payloads are retransmitted lambda*log(n) times by many members,
# so identical byte strings are decoded over and over during churn. All
# messages are immutable (frozen dataclasses), so caching decodes of
# small single messages is safe and cuts simulation time substantially.
_DECODE_CACHE: dict = {}
_DECODE_CACHE_LIMIT = 8192
_CACHEABLE_MAX_LEN = 96


def decode(buf: Buffer) -> Message:
    """Decode one wire packet back into a message.

    ``bytes`` input is decoded as always (including the small-message
    decode cache). ``bytearray``/``memoryview`` input is decoded without
    copying the packet: small non-compound packets are interned to
    ``bytes`` once so they share the decode cache with the classic path,
    larger packets (push-pull snapshots, gossip compounds) are sliced in
    place. Both paths produce identical messages and identical
    :class:`CodecError` behavior.
    """
    if buf.__class__ is not bytes:
        if len(buf) <= _CACHEABLE_MAX_LEN and len(buf) and buf[0] != T_COMPOUND:
            # Interning the (tiny) packet costs one small copy but buys
            # full cache hits for the retransmit-heavy gossip kinds.
            return decode(bytes(buf))
        message, offset = _decode_at(buf, 0)
        if offset != len(buf):
            raise CodecError(f"{len(buf) - offset} trailing bytes after message")
        return message
    if len(buf) <= _CACHEABLE_MAX_LEN and buf and buf[0] != T_COMPOUND:
        cached = _DECODE_CACHE.get(buf)
        if cached is not None:
            return cached
        message, offset = _decode_at(buf, 0)
        if offset != len(buf):
            raise CodecError(f"{len(buf) - offset} trailing bytes after message")
        if len(_DECODE_CACHE) >= _DECODE_CACHE_LIMIT:
            _DECODE_CACHE.clear()
        _DECODE_CACHE[buf] = message
        return message
    message, offset = _decode_at(buf, 0)
    if offset != len(buf):
        raise CodecError(f"{len(buf) - offset} trailing bytes after message")
    return message


def _decode_at(buf: Buffer, offset: int) -> Tuple[Message, int]:
    if offset >= len(buf):
        raise CodecError("empty packet")
    tag = buf[offset]
    offset += 1
    if tag == T_PING:
        seq_no, offset = _get_u32(buf, offset)
        target, offset = _get_str(buf, offset)
        source, offset = _get_str(buf, offset)
        return Ping(seq_no, target, source), offset
    if tag == T_PING_REQ:
        seq_no, offset = _get_u32(buf, offset)
        target, offset = _get_str(buf, offset)
        source, offset = _get_str(buf, offset)
        want_nack, offset = _get_bool(buf, offset)
        return PingReq(seq_no, target, source, want_nack), offset
    if tag == T_ACK:
        seq_no, offset = _get_u32(buf, offset)
        source, offset = _get_str(buf, offset)
        return Ack(seq_no, source), offset
    if tag == T_NACK:
        seq_no, offset = _get_u32(buf, offset)
        source, offset = _get_str(buf, offset)
        return Nack(seq_no, source), offset
    if tag == T_SUSPECT:
        incarnation, offset = _get_u64(buf, offset)
        member, offset = _get_str(buf, offset)
        sender, offset = _get_str(buf, offset)
        return Suspect(incarnation, member, sender), offset
    if tag == T_ALIVE:
        incarnation, offset = _get_u64(buf, offset)
        member, offset = _get_str(buf, offset)
        address, offset = _get_str(buf, offset)
        meta, offset = _get_bytes(buf, offset)
        return Alive(incarnation, member, address, meta), offset
    if tag == T_ALIVE_Z:
        incarnation, offset = _get_u64(buf, offset)
        member, offset = _get_str(buf, offset)
        address, offset = _get_str(buf, offset)
        meta, offset = _get_bytes(buf, offset)
        zone, offset = _get_str(buf, offset)
        return Alive(incarnation, member, address, meta, zone), offset
    if tag == T_DEAD:
        incarnation, offset = _get_u64(buf, offset)
        member, offset = _get_str(buf, offset)
        sender, offset = _get_str(buf, offset)
        return Dead(incarnation, member, sender), offset
    if tag == T_USER_EVENT:
        origin, offset = _get_str(buf, offset)
        seq_no, offset = _get_u32(buf, offset)
        payload, offset = _get_bytes(buf, offset)
        return UserEvent(origin, seq_no, payload), offset
    if tag == T_PUSH_PULL:
        source, offset = _get_str(buf, offset)
        flags, offset = _get_u8(buf, offset)
        count, offset = _get_u16(buf, offset)
        # Inlined per-entry loop: one sync round decodes hundreds of
        # entries, so the per-field helper calls above are replaced with
        # local bounds checks, fused struct reads and a string cache.
        states = []
        append = states.append
        buf_len = len(buf)
        unpack_head = _unpack_entry_head_from
        unpack_u32 = _unpack_u32_from
        str_cache = _STR_CACHE
        for _ in range(count):
            # Name (u8 length + UTF-8 body), unrolled.
            if offset >= buf_len:
                raise CodecError("truncated string length")
            end = offset + 1 + buf[offset]
            if end > buf_len:
                raise CodecError("truncated string body")
            raw = buf[offset + 1 : end]
            if raw.__class__ is not bytes:
                raw = bytes(raw)
            name = str_cache.get(raw)
            if name is None:
                try:
                    name = raw.decode("utf-8")
                except UnicodeDecodeError as exc:
                    raise CodecError(f"invalid UTF-8 in string: {exc}") from exc
                if len(str_cache) >= _STR_CACHE_LIMIT:
                    str_cache.clear()
                str_cache[raw] = name
            offset = end
            # Address, same shape.
            if offset >= buf_len:
                raise CodecError("truncated string length")
            end = offset + 1 + buf[offset]
            if end > buf_len:
                raise CodecError("truncated string body")
            raw = buf[offset + 1 : end]
            if raw.__class__ is not bytes:
                raw = bytes(raw)
            address = str_cache.get(raw)
            if address is None:
                try:
                    address = raw.decode("utf-8")
                except UnicodeDecodeError as exc:
                    raise CodecError(f"invalid UTF-8 in string: {exc}") from exc
                if len(str_cache) >= _STR_CACHE_LIMIT:
                    str_cache.clear()
                str_cache[raw] = address
            offset = end
            # Fused incarnation + state + meta length (11 bytes).
            if offset + 11 > buf_len:
                if offset + 8 > buf_len:
                    raise CodecError("truncated u64")
                if offset + 9 > buf_len:
                    raise CodecError("truncated u8")
                raise CodecError("truncated u16")
            incarnation, state_value, meta_len = unpack_head(buf, offset)
            offset += 11
            if meta_len:
                meta_end = offset + meta_len
                if meta_end > buf_len:
                    raise CodecError("truncated byte field")
                meta = buf[offset:meta_end]
                if meta.__class__ is not bytes:
                    meta = bytes(meta)
                offset = meta_end
            else:
                meta = b""
            if offset + 4 > buf_len:
                raise CodecError("truncated u32")
            age_ms = unpack_u32(buf, offset)[0]
            offset += 4
            append((name, address, incarnation, state_value, meta, age_ms))
        return (
            PushPull(source, tuple(states), bool(flags & 1), bool(flags & 2)),
            offset,
        )
    if tag == T_ZONE_DIGEST:
        zone, offset = _get_str(buf, offset)
        source, offset = _get_str(buf, offset)
        if offset + _ZONE_DIGEST_BODY.size > len(buf):
            raise CodecError("truncated zone digest")
        body = _ZONE_DIGEST_BODY.unpack_from(buf, offset)
        offset += _ZONE_DIGEST_BODY.size
        return ZoneDigest(zone, source, *body), offset
    if tag == T_ZONE_CLAIM:
        zone, offset = _get_str(buf, offset)
        member, offset = _get_str(buf, offset)
        if offset + 9 > len(buf):
            raise CodecError("truncated zone claim")
        incarnation, state_value = _unpack_u64_u8_from(buf, offset)
        offset += 9
        return ZoneClaim(zone, member, incarnation, state_value), offset
    if tag == T_COMPOUND:
        count, offset = _get_u16(buf, offset)
        if count == 0:
            raise CodecError("empty compound")
        parts = []
        buf_len = len(buf)
        for _ in range(count):
            length, offset = _get_u16(buf, offset)
            end = offset + length
            if end > buf_len:
                raise CodecError("truncated compound part")
            if length <= _CACHEABLE_MAX_LEN:
                # Route small parts through decode() so identical gossip
                # payloads hit the decode cache.
                parts.append(decode(buf[offset:end]))
            else:
                # Large parts (full push-pull snapshots): decode in
                # place, no intermediate copy of the part bytes.
                part, consumed = _decode_at(buf, offset)
                if consumed != end:
                    raise CodecError(
                        f"{end - consumed} trailing bytes after message"
                    )
                parts.append(part)
            offset = end
        return Compound(tuple(parts)), offset
    raise CodecError(f"unknown message tag 0x{tag:02x}")


def _get_u8(buf: Buffer, offset: int) -> Tuple[int, int]:
    if offset + 1 > len(buf):
        raise CodecError("truncated u8")
    return buf[offset], offset + 1


def _get_bool(buf: Buffer, offset: int) -> Tuple[bool, int]:
    value, offset = _get_u8(buf, offset)
    return bool(value), offset


def _get_u16(buf: Buffer, offset: int) -> Tuple[int, int]:
    if offset + 2 > len(buf):
        raise CodecError("truncated u16")
    return _U16.unpack_from(buf, offset)[0], offset + 2


def _get_u32(buf: Buffer, offset: int) -> Tuple[int, int]:
    if offset + 4 > len(buf):
        raise CodecError("truncated u32")
    return _U32.unpack_from(buf, offset)[0], offset + 4


def _get_u64(buf: Buffer, offset: int) -> Tuple[int, int]:
    if offset + 8 > len(buf):
        raise CodecError("truncated u64")
    return _U64.unpack_from(buf, offset)[0], offset + 8


#: Framing overhead added per part when packing into a compound message.
COMPOUND_PART_OVERHEAD = 2
#: Fixed overhead of a compound wrapper (type byte + part count).
COMPOUND_HEADER_OVERHEAD = 3


def compound_size(part_sizes: List[int]) -> int:
    """Wire size of a compound message holding parts of the given sizes."""
    return COMPOUND_HEADER_OVERHEAD + sum(
        COMPOUND_PART_OVERHEAD + size for size in part_sizes
    )


def pack_with_piggyback(primary: Message, piggyback: List[bytes]) -> bytes:
    """Encode ``primary`` with optional pre-encoded gossip piggyback.

    When there is no piggyback the primary is sent bare (no compound
    framing), which is what memberlist does and what keeps quiescent
    clusters cheap on the wire.
    """
    return pack_encoded_with_piggyback(encode(primary), piggyback)


def pack_encoded_with_piggyback(
    encoded_primary: bytes, piggyback: List[bytes]
) -> bytes:
    """Like :func:`pack_with_piggyback` for an already-encoded primary."""
    if not piggyback:
        return encoded_primary
    out = [bytes((T_COMPOUND,)), _U16.pack(1 + len(piggyback))]
    out.append(_U16.pack(len(encoded_primary)))
    out.append(encoded_primary)
    for raw in piggyback:
        out.append(_U16.pack(len(raw)))
        out.append(raw)
    return b"".join(out)


def pack_encoded_with_piggyback_into(
    encoded_primary: bytes, piggyback: List[bytes], out: bytearray
) -> int:
    """Append :func:`pack_encoded_with_piggyback`'s output to ``out``.

    Byte-identical to the allocating form; returns the bytes appended.
    Paired with a transport whose ``send`` copies before returning
    (``supports_buffer_send``), a sender reuses one scratch buffer for
    every outgoing packet instead of allocating a fresh ``bytes``.
    """
    before = len(out)
    if not piggyback:
        out += encoded_primary
        return len(out) - before
    out.append(T_COMPOUND)
    out += _U16.pack(1 + len(piggyback))
    out += _U16.pack(len(encoded_primary))
    out += encoded_primary
    for raw in piggyback:
        out += _U16.pack(len(raw))
        out += raw
    return len(out) - before
