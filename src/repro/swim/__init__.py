"""SWIM protocol substrate with memberlist's production features.

This package implements the full protocol the paper evaluates on:

* the SWIM failure detector (``ping`` / ``ping-req`` / ``ack`` and, with
  LHA-Probe, ``nack``), with round-robin probe target selection;
* the suspicion subprotocol with incarnation numbers and refutation;
* gossip-based dissemination with MTU-limited piggybacking and
  ``lambda * log(n)`` retransmissions;
* memberlist's additions: a dedicated gossip tick, anti-entropy push/pull
  state sync over a reliable channel, retention of dead members' state,
  and a reliable-channel fallback probe.

The central class is :class:`~repro.swim.node.SwimNode`, which is sans-IO:
it is driven entirely through a clock, a timer scheduler, an RNG and a
transport, so the identical code runs under the discrete-event simulator
(:mod:`repro.sim`) and under asyncio UDP (:mod:`repro.transport.udp`).
"""

from repro.swim.member_map import Member, MemberMap
from repro.swim.messages import (
    Ack,
    Alive,
    Compound,
    Dead,
    Nack,
    Ping,
    PingReq,
    PushPull,
    Suspect,
)
from repro.swim.node import SwimNode
from repro.swim.state import MemberState

__all__ = [
    "Ack",
    "Alive",
    "Compound",
    "Dead",
    "Member",
    "MemberMap",
    "MemberState",
    "Nack",
    "Ping",
    "PingReq",
    "PushPull",
    "Suspect",
    "SwimNode",
]
