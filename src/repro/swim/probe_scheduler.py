"""Pluggable probe-target scheduling strategies.

SWIM's failure detector probes one member per protocol period; *which*
member is a strategy decision. Classic SWIM (Section III-A) uses a
randomized round-robin — bounded worst-case first-detection latency with
the expected latency of random selection — and that remains the default
here. But the schedule is a lever: *Probe Scheduling for Efficient
Detection of Silent Failures* (arXiv:1302.0792) shows that weighting
target selection by each member's likelihood of having failed cuts
detection latency for the same probe budget, and Lifeguard's own signals
(probe RTTs, suspicion state) are exactly the inputs such a policy needs.

:class:`ProbeScheduler` is the strategy interface behind
:meth:`MemberMap.next_probe_target
<repro.swim.member_map.MemberMap.next_probe_target>`; the member map owns
the membership table and feeds the scheduler lifecycle hooks
(``on_member_added`` / ``on_members_removed``), while the node feeds it
liveness signals (``note_ack`` for clean direct-UDP RTT samples,
``note_confirmation`` for any completed probe). Three implementations
ship, selected by :attr:`SwimConfig.probe_scheduler
<repro.config.SwimConfig.probe_scheduler>`:

* :class:`RoundRobinScheduler` (``"round-robin"``, default) — the classic
  schedule, bit-identical to the pre-extraction inline code under seeded
  runs (pinned by the golden-digest trace-equivalence tests).
* :class:`LikelihoodWeightedScheduler` (``"likelihood"``) — weights
  targets by time since their last confirmation, per arXiv:1302.0792's
  failure-likelihood ordering.
* :class:`LhmRttScheduler` (``"lhm-rtt"``) — likelihood weighting
  further biased toward members with high observed probe RTT (an EWMA
  per target, fed only by direct-path acks) and toward currently
  suspected members, so suspicions are refuted or confirmed quickly.

Determinism contract: every random draw a scheduler makes comes from the
node's injected RNG (shared with the member map), so seeded runs remain
reproducible for every strategy. See docs/PROBE_SCHEDULING.md.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (member_map imports us)
    from repro.swim.member_map import Member, MemberMap


class ProbeScheduler:
    """Strategy interface for probe-target selection.

    One instance serves one :class:`~repro.swim.member_map.MemberMap`;
    the map calls :meth:`bind` at construction and then keeps the
    scheduler informed of membership changes. Subclasses override
    :meth:`next_target` plus whichever hooks their policy consumes.
    """

    #: Registry key; also the ``strategy`` label on the ops counter.
    name = "abstract"

    def __init__(self) -> None:
        self._members: Optional["MemberMap"] = None
        self._rng: random.Random = random.Random()
        #: Targets handed out so far (feeds the ops plane's
        #: ``lifeguard_probe_scheduler_selections_total`` counter).
        self.selections = 0

    def bind(self, members: "MemberMap", rng: random.Random) -> None:
        """Attach to the member map that owns this scheduler."""
        if self._members is not None:
            raise RuntimeError(
                f"{type(self).__name__} is already bound to a member map; "
                f"schedulers are per-node, not shared"
            )
        self._members = members
        self._rng = rng

    # -- lifecycle hooks (driven by MemberMap) ------------------------- #

    def on_member_added(self, name: str) -> None:
        """A new (non-local) member entered the table."""

    def on_members_removed(self, names: Iterable[str]) -> None:
        """Members were reclaimed from the table."""

    # -- liveness signals (driven by SwimNode) ------------------------- #

    def note_ack(self, name: str, rtt: float, now: float) -> None:
        """A probe to ``name`` was acked on the *direct* UDP path within
        the probe timeout — a clean peer-RTT observation (the same filter
        as :attr:`SwimNode.on_probe_rtt
        <repro.swim.node.SwimNode.on_probe_rtt>`; fallback and indirect
        acks never reach here)."""

    def note_confirmation(self, name: str, now: float) -> None:
        """A probe to ``name`` completed successfully by *any* path
        (direct, reliable fallback, or indirect relay): the member was
        confirmed alive at ``now``."""

    # -- selection ------------------------------------------------------ #

    def next_target(self, now: float = 0.0) -> Optional["Member"]:
        """The member to probe this protocol period, or ``None``.

        Must skip dead/left members and the local member; SUSPECT members
        are probeable (probing them is how a suspicion gets refuted).
        """
        raise NotImplementedError


class RoundRobinScheduler(ProbeScheduler):
    """SWIM's randomized round-robin schedule (the default).

    New members are inserted at a random position in the current round;
    a completed pass reshuffles the list (as memberlist does), preserving
    the randomized-order property across rounds. This class reproduces
    the pre-extraction :class:`~repro.swim.member_map.MemberMap` inline
    logic RNG-call-for-RNG-call, so seeded runs are bit-identical to the
    historical behavior — the property the golden-digest
    trace-equivalence tests pin.
    """

    name = "round-robin"

    def __init__(self) -> None:
        super().__init__()
        self._order: List[str] = []
        self._index = 0
        #: The most recently selected target, used to avoid probing the
        #: same member twice in consecutive periods when a round-boundary
        #: reshuffle happens to put it back at the front.
        self._last: Optional[str] = None

    def on_member_added(self, name: str) -> None:
        offset = self._rng.randint(0, len(self._order))
        self._order.insert(offset, name)
        if offset < self._index:
            self._index += 1

    def on_members_removed(self, names: Iterable[str]) -> None:
        gone = set(names)
        kept = [n for n in self._order if n not in gone]
        removed_before = sum(1 for n in self._order[: self._index] if n in gone)
        self._order = kept
        self._index = max(0, self._index - removed_before)

    def next_target(self, now: float = 0.0) -> Optional["Member"]:
        members = self._members
        assert members is not None
        checked = 0
        total = len(self._order)
        deferred: Optional["Member"] = None
        while checked < total:
            if self._index >= len(self._order):
                self._index = 0
                self._rng.shuffle(self._order)
            name = self._order[self._index]
            self._index += 1
            checked += 1
            member = members.get(name)
            if member is None:
                continue
            if member.is_dead or name == members.local_name:
                continue
            if name == self._last and members.num_probeable() >= 2:
                # The previous period probed this exact member and a
                # round-boundary reshuffle (or a run of dead entries) put
                # it first again (mid-scan reshuffles can even present it
                # repeatedly). Probing it back to back wastes a period
                # that another member is waiting for, so defer it and keep
                # scanning.
                deferred = member
                continue
            self._last = name
            return member
        if deferred is not None:
            # The check budget ran out on retained-dead entries (a
            # mid-scan reshuffle can revisit them) before reaching the
            # other probeable member the deferral guard promised exists.
            # Take one deterministic pass over the list for it; only if
            # even that finds nobody does the repeat go out (a repeat
            # beats an idle period).
            local_name = members.local_name
            for name in self._order:
                if name == self._last or name == local_name:
                    continue
                member = members.get(name)
                if member is None or member.is_dead:
                    continue
                self._last = name
                return member
        return deferred


class LikelihoodWeightedScheduler(ProbeScheduler):
    """Weight targets by time since their last confirmation.

    arXiv:1302.0792 orders probes by each target's likelihood of having
    silently failed; with homogeneous failure rates that likelihood is
    monotone in the time since the target was last confirmed alive. Each
    selection draws a member with probability proportional to
    ``min(staleness, cap) + floor``: the floor keeps recently confirmed
    members in the rotation (so the schedule stays complete and the
    worst case bounded in expectation), the cap stops one long-stale
    member from monopolizing the probe budget. The previous target is
    excluded whenever at least two members are probeable.

    Selection is O(n) in the probeable-member count — fine at the paper's
    n=128, measurable at multi-thousand-member scale (the round-robin
    default stays O(1) amortized).
    """

    name = "likelihood"

    #: Staleness saturates here (seconds); beyond it, members compete
    #: with equal (maximal) urgency.
    staleness_cap = 60.0
    #: Additive weight floor keeping just-confirmed members selectable.
    weight_floor = 0.25

    def __init__(self) -> None:
        super().__init__()
        #: name -> virtual time of the last confirmation we saw.
        self._confirmed_at: Dict[str, float] = {}
        self._last: Optional[str] = None

    def on_members_removed(self, names: Iterable[str]) -> None:
        for name in names:
            self._confirmed_at.pop(name, None)

    def note_confirmation(self, name: str, now: float) -> None:
        self._confirmed_at[name] = now

    def _weight(self, member: "Member", now: float) -> float:
        # A member we never confirmed is as stale as its last known state
        # transition (join time for members learned via gossip).
        confirmed = self._confirmed_at.get(member.name, member.state_changed_at)
        staleness = min(max(0.0, now - confirmed), self.staleness_cap)
        return staleness + self.weight_floor

    def next_target(self, now: float = 0.0) -> Optional["Member"]:
        members = self._members
        assert members is not None
        candidates = members.probeable_members()
        if not candidates:
            return None
        if self._last is not None and len(candidates) > 1:
            trimmed = [m for m in candidates if m.name != self._last]
            if trimmed:
                candidates = trimmed
        weights = [self._weight(member, now) for member in candidates]
        total = sum(weights)
        mark = self._rng.random() * total
        acc = 0.0
        chosen = candidates[-1]
        for member, weight in zip(candidates, weights):
            acc += weight
            if mark <= acc:
                chosen = member
                break
        self._last = chosen.name
        return chosen


class LhmRttScheduler(LikelihoodWeightedScheduler):
    """Likelihood weighting biased by observed RTT and suspicion state.

    Extends :class:`LikelihoodWeightedScheduler` with the two Lifeguard
    signals the node already surfaces:

    * a per-target RTT EWMA fed by :meth:`note_ack` (clean direct-UDP
      samples only — the same filter as the ops RTT histogram, so a TCP
      fallback ack can never pollute the signal). Targets whose RTT runs
      above the running mean get proportionally more probe attention;
      a slow link is where silent failure hides longest.
    * a flat multiplier for currently SUSPECT members, so an open
      suspicion is re-probed promptly and either refuted (the member
      acks, gossips a fresh alive) or reinforced before the timeout.
    """

    name = "lhm-rtt"

    #: EWMA smoothing factor for per-target and mean RTT.
    rtt_smoothing = 0.3
    #: Cap on the RTT-to-mean ratio contribution (keeps one pathological
    #: link from starving the rest of the schedule).
    rtt_ratio_cap = 4.0
    #: Weight multiplier for members currently under suspicion.
    suspect_boost = 4.0

    def __init__(self) -> None:
        super().__init__()
        self._rtt_ewma: Dict[str, float] = {}
        self._rtt_mean: Optional[float] = None

    def on_members_removed(self, names: Iterable[str]) -> None:
        super().on_members_removed(names)
        for name in names:
            self._rtt_ewma.pop(name, None)

    def note_ack(self, name: str, rtt: float, now: float) -> None:
        alpha = self.rtt_smoothing
        previous = self._rtt_ewma.get(name)
        self._rtt_ewma[name] = (
            rtt if previous is None else previous + alpha * (rtt - previous)
        )
        mean = self._rtt_mean
        self._rtt_mean = rtt if mean is None else mean + alpha * (rtt - mean)

    def _weight(self, member: "Member", now: float) -> float:
        weight = super()._weight(member, now)
        mean = self._rtt_mean
        if mean is not None and mean > 0.0:
            observed = self._rtt_ewma.get(member.name)
            if observed is not None:
                weight *= 1.0 + min(observed / mean, self.rtt_ratio_cap)
        if member.is_suspect:
            weight *= self.suspect_boost
        return weight


#: Registry of selectable strategies. Keys must stay in lockstep with
#: :data:`repro.config.PROBE_SCHEDULER_NAMES` (config cannot import this
#: module without a cycle through the node; a test pins the equality).
PROBE_SCHEDULERS: Dict[str, Type[ProbeScheduler]] = {
    scheduler.name: scheduler
    for scheduler in (
        RoundRobinScheduler,
        LikelihoodWeightedScheduler,
        LhmRttScheduler,
    )
}

PROBE_SCHEDULER_NAMES: Tuple[str, ...] = tuple(PROBE_SCHEDULERS)


def make_probe_scheduler(name: str) -> ProbeScheduler:
    """Instantiate the strategy registered under ``name``."""
    try:
        cls = PROBE_SCHEDULERS[name]
    except KeyError:
        known = ", ".join(sorted(PROBE_SCHEDULERS))
        raise ValueError(
            f"unknown probe scheduler {name!r}; expected one of: {known}"
        )
    return cls()
