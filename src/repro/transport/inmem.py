"""Synchronous in-memory fabric for unit tests.

Packets are delivered immediately (or held for manual stepping), with no
latency, loss or scheduler involvement — ideal for exercising individual
protocol state transitions deterministically.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple


class InMemoryFabric:
    """Routes packets between :class:`InMemoryTransport` endpoints.

    In ``auto_deliver`` mode (default) packets arrive synchronously inside
    the ``send`` call; otherwise they queue until :meth:`deliver_all` or
    :meth:`deliver_one` is called, letting tests interleave deliveries.
    """

    def __init__(
        self, auto_deliver: bool = True, notify_reliable_failures: bool = False
    ) -> None:
        self.auto_deliver = auto_deliver
        #: When set, a *reliable* send into a blackhole synchronously
        #: invokes the sender's :attr:`InMemoryTransport.on_reliable_failure`
        #: hook — the unit-test analogue of a TCP connect timeout. Off by
        #: default so tests that blackhole hosts without caring about the
        #: reliable channel see no extra callbacks.
        self.notify_reliable_failures = notify_reliable_failures
        self._endpoints: Dict[str, "InMemoryTransport"] = {}
        self._queue: Deque[Tuple[str, str, bytes, bool]] = deque()
        #: Every packet ever sent: (src, dst, payload, reliable).
        self.log: list = []
        #: Destinations to silently drop packets to (simulating a dead
        #: host without touching the recipient's state).
        self.blackholes: set = set()

    def attach(self, transport: "InMemoryTransport") -> None:
        if transport.local_address in self._endpoints:
            raise ValueError(f"address {transport.local_address!r} already attached")
        self._endpoints[transport.local_address] = transport

    def detach(self, address: str) -> None:
        self._endpoints.pop(address, None)

    def send(self, src: str, dst: str, payload: bytes, reliable: bool) -> None:
        self.log.append((src, dst, payload, reliable))
        if dst in self.blackholes:
            if reliable and self.notify_reliable_failures:
                sender = self._endpoints.get(src)
                if sender is not None and sender.on_reliable_failure is not None:
                    sender.on_reliable_failure(dst)
            return
        if self.auto_deliver:
            self._deliver(src, dst, payload, reliable)
        else:
            self._queue.append((src, dst, payload, reliable))

    def pending(self) -> int:
        return len(self._queue)

    def deliver_one(self) -> bool:
        if not self._queue:
            return False
        src, dst, payload, reliable = self._queue.popleft()
        self._deliver(src, dst, payload, reliable)
        return True

    def deliver_all(self, max_rounds: int = 10_000) -> int:
        count = 0
        while self.deliver_one():
            count += 1
            if count >= max_rounds:
                raise RuntimeError("in-memory fabric did not quiesce")
        return count

    def _deliver(self, src: str, dst: str, payload: bytes, reliable: bool) -> None:
        endpoint = self._endpoints.get(dst)
        if endpoint is not None and endpoint.handler is not None:
            endpoint.handler(payload, src, reliable)


class InMemoryTransport:
    """A named endpoint on an :class:`InMemoryFabric`."""

    __slots__ = ("_address", "_fabric", "handler", "on_reliable_failure")

    def __init__(self, address: str, fabric: InMemoryFabric) -> None:
        self._address = address
        self._fabric = fabric
        self.handler: Optional[Callable[[bytes, str, bool], None]] = None
        #: Invoked with the destination address when a reliable send fails
        #: (only when the fabric has ``notify_reliable_failures`` set).
        self.on_reliable_failure: Optional[Callable[[str], None]] = None
        fabric.attach(self)

    @property
    def local_address(self) -> str:
        return self._address

    def bind(self, handler: Callable[[bytes, str, bool], None]) -> None:
        self.handler = handler

    def send(self, destination: str, payload: bytes, reliable: bool = False) -> None:
        self._fabric.send(self._address, destination, payload, reliable)
