"""Real-network runtime: asyncio UDP datagrams plus a TCP side channel.

This is the deployment face of the library — the same
:class:`~repro.swim.node.SwimNode` that runs under the simulator runs
here unchanged, wired to:

* an asyncio **clock/scheduler adapter** (:class:`AsyncioScheduler`) over
  ``loop.time()`` / ``loop.call_at``;
* a **UDP socket** for the datagram channel (probes and gossip);
* a pooled **TCP reliable channel** for anti-entropy push/pull sync and
  the fallback probe: per-peer connection pools with an idle reaper,
  length-prefixed frames multiplexed over persistent connections, and
  jittered-exponential-backoff retry for transient connect failures.

Each frame carries the sender's canonical address so replies can be
routed. Channel-level events (connections opened/reused/reaped, retries,
truncated frames, permanent send failures) are counted in a
:class:`~repro.metrics.telemetry.TransportStats`; when wired through
:class:`UdpMember` these land in the node's
:class:`~repro.metrics.telemetry.Telemetry` and permanent reliable-send
failures feed :meth:`SwimNode.note_reliable_send_failure
<repro.swim.node.SwimNode.note_reliable_send_failure>` as a
local-health signal.

Pool/retry behaviour is tuned by the ``reliable_*`` knobs on
:class:`~repro.config.SwimConfig`.

Addresses are ``"host:port"`` strings throughout, matching the address
field gossiped in ``alive`` messages.
"""

from __future__ import annotations

import asyncio
import contextlib
import random
import socket
import struct
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.config import SwimConfig
from repro.faults import FaultInjector, FaultPlan
from repro.metrics.telemetry import TransportStats
from repro.swim.events import EventListener
from repro.swim.node import SwimNode

_FRAME = struct.Struct(">HI")  # address length, payload length

#: Upper bound on a single reliable frame's payload; a header announcing
#: more than this is treated as a protocol violation, not an allocation.
MAX_FRAME_PAYLOAD = 16 * 1024 * 1024


def parse_address(address: str) -> Tuple[str, int]:
    """Split ``"host:port"`` into a ``(host, port)`` pair."""
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"not a host:port address: {address!r}")
    return host, int(port)


#: Requested UDP socket buffer size. Default buffers (~208 KiB on stock
#: Linux) hold only ~250 small datagrams of kernel skb accounting — one
#: gossip burst from a batched sender — so bursts silently drop right at
#: the protocol's normal fan-out size. The kernel clamps the request to
#: ``net.core.{rmem,wmem}_max``; asking for more than it grants is fine.
_UDP_SOCKET_BUFFER = 1 << 22


def _request_socket_buffers(sock: socket.socket) -> None:
    """Best-effort enlargement of a UDP socket's kernel buffers."""
    for option in (socket.SO_RCVBUF, socket.SO_SNDBUF):
        try:
            sock.setsockopt(socket.SOL_SOCKET, option, _UDP_SOCKET_BUFFER)
        except OSError:
            pass


async def _close_writer(writer: asyncio.StreamWriter) -> None:
    """Close ``writer`` and wait for the transport to release its FD."""
    writer.close()
    try:
        await writer.wait_closed()
    except (OSError, asyncio.CancelledError):
        pass


class AsyncioScheduler:
    """Adapter satisfying :class:`repro.runtime.Scheduler` on an event loop.

    Construct inside a running event loop (or pass one explicitly);
    ``asyncio.get_event_loop()``'s implicit-creation behaviour is
    deprecated and unavailable on modern Python, so it is not used.
    """

    __slots__ = ("_loop",)

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self._loop = loop if loop is not None else asyncio.get_running_loop()

    def time(self) -> float:
        return self._loop.time()

    def call_at(self, when: float, callback: Callable[[], None]):
        return self._loop.call_at(when, callback)


class _UdpProtocol(asyncio.DatagramProtocol):
    """Datagram protocol that tolerates packets arriving before its owner
    transport is fully constructed: early datagrams are buffered — up to
    :data:`_MAX_EARLY_DATAGRAMS`, beyond which they are counted and
    dropped rather than accumulated without bound — and flushed once
    :meth:`set_owner` runs (previously they crashed the receive callback
    with an ``AttributeError``). Both the buffered and the dropped count
    surface in :class:`TransportStats` as ``datagrams_buffered_early`` /
    ``datagrams_dropped_early``."""

    _MAX_EARLY_DATAGRAMS = 128

    def __init__(self, owner: Optional["UdpTransport"] = None) -> None:
        self._owner = owner
        self._early: List[Tuple[bytes, tuple]] = []
        self._early_dropped = 0

    def set_owner(self, owner: "UdpTransport") -> Tuple[int, int]:
        """Attach the owning transport and flush buffered datagrams;
        returns ``(buffered, dropped)`` counts from the ownerless window."""
        self._owner = owner
        early, self._early = self._early, []
        for data, addr in early:
            owner._on_datagram(data, addr)
        return len(early), self._early_dropped

    def datagram_received(self, data: bytes, addr) -> None:
        if self._owner is None:
            if len(self._early) < self._MAX_EARLY_DATAGRAMS:
                self._early.append((data, addr))
            else:
                self._early_dropped += 1
            return
        self._owner._on_datagram(data, addr)

    def error_received(self, exc) -> None:  # pragma: no cover - OS specific
        pass


class _PooledConn:
    """One established TCP connection in a peer's pool."""

    __slots__ = ("reader", "writer", "last_used")

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        last_used: float,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.last_used = last_used


class _PeerChannel:
    """Pooled reliable (TCP) connections to a single peer.

    A send first tries pooled idle connections — a stale one (the peer
    restarted since we last talked) is discarded without consuming a
    retry attempt — then falls back to opening a fresh connection, with
    up to ``reliable_connect_retries`` retries spaced by jittered
    exponential backoff. At most ``reliable_pool_size`` idle connections
    are retained; the transport's reaper closes ones idle longer than
    ``reliable_idle_timeout``.
    """

    __slots__ = ("_owner", "_host", "_port", "_idle", "_in_flight")

    def __init__(self, owner: "UdpTransport", host: str, port: int) -> None:
        self._owner = owner
        self._host = host
        self._port = port
        self._idle: List[_PooledConn] = []
        self._in_flight = 0

    @property
    def _stats(self) -> TransportStats:
        return self._owner.stats

    @property
    def idle_count(self) -> int:
        return len(self._idle)

    @property
    def unused(self) -> bool:
        return not self._idle and self._in_flight == 0

    async def send(self, frame: bytes) -> bool:
        """Deliver one frame; returns ``False`` on permanent failure."""
        self._in_flight += 1
        try:
            if await self._send_on_pooled(frame):
                return True
            return await self._send_on_fresh(frame)
        finally:
            self._in_flight -= 1

    async def _send_on_pooled(self, frame: bytes) -> bool:
        while self._idle:
            conn = self._idle.pop()
            if conn.writer.is_closing():
                self._stats.incr("conns_closed_error")
                continue
            try:
                conn.writer.write(frame)
                await conn.writer.drain()
            except asyncio.CancelledError:
                await _close_writer(conn.writer)
                raise
            except OSError:
                self._stats.incr("conns_closed_error")
                await _close_writer(conn.writer)
                continue
            self._stats.incr("conns_reused")
            self._stats.incr("reliable_send_ok")
            self._checkin(conn)
            return True
        return False

    async def _send_on_fresh(self, frame: bytes) -> bool:
        opts = self._owner.config
        for attempt in range(opts.reliable_connect_retries + 1):
            if attempt:
                self._stats.incr("reliable_connect_retries")
                await asyncio.sleep(self._backoff_delay(attempt))
            if self._owner.closed:
                return False
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(self._host, self._port),
                    opts.reliable_connect_timeout,
                )
            except (OSError, asyncio.TimeoutError):
                self._stats.incr("connect_failures")
                continue
            self._stats.incr("conns_opened")
            try:
                writer.write(frame)
                await writer.drain()
            except asyncio.CancelledError:
                await _close_writer(writer)
                raise
            except OSError:
                self._stats.incr("conns_closed_error")
                await _close_writer(writer)
                continue
            self._stats.incr("reliable_send_ok")
            self._checkin(
                _PooledConn(reader, writer, self._owner.loop_time())
            )
            return True
        self._stats.incr("reliable_send_failed")
        return False

    def _backoff_delay(self, attempt: int) -> float:
        opts = self._owner.config
        delay = min(
            opts.reliable_backoff_max,
            opts.reliable_backoff_base * (2 ** (attempt - 1)),
        )
        return delay * random.uniform(0.5, 1.5)

    def _checkin(self, conn: _PooledConn) -> None:
        if conn.writer.is_closing():
            return
        if len(self._idle) >= self._owner.config.reliable_pool_size:
            self._stats.incr("conns_closed_surplus")
            conn.writer.close()
            return
        conn.last_used = self._owner.loop_time()
        self._idle.append(conn)

    async def reap_idle(self, now: float, idle_timeout: float) -> None:
        """Close pooled connections idle longer than ``idle_timeout``."""
        keep: List[_PooledConn] = []
        reap: List[_PooledConn] = []
        for conn in self._idle:
            if now - conn.last_used > idle_timeout or conn.writer.is_closing():
                reap.append(conn)
            else:
                keep.append(conn)
        self._idle = keep
        for conn in reap:
            self._stats.incr("conns_closed_idle")
            await _close_writer(conn.writer)

    async def close(self) -> None:
        idle, self._idle = self._idle, []
        for conn in idle:
            await _close_writer(conn.writer)


class UdpTransport:
    """Satisfies :class:`repro.runtime.Transport` over real sockets.

    Create with :meth:`UdpTransport.create` inside a running event loop.
    The reliable channel is fire-and-forget from the node's perspective;
    permanent failures (connect retries exhausted) are reported through
    :attr:`on_reliable_failure` and counted in :attr:`stats`. Every
    transport in :mod:`repro.transport` exposes the same hook with the
    same semantics (:class:`~repro.transport.sim.SimTransport` fires it
    for partition-severed reliable sends), so the node's local-health
    accounting and the sync engine's error handling are transport-agnostic.

    The datagram path is pluggable: this class is the default
    ``"asyncio"`` backend (one ``sendto``/callback per datagram);
    :class:`repro.transport.fastudp.BatchedUdpTransport` subclasses it,
    replacing only the datagram path with a batched-syscall
    :class:`~repro.transport.fastudp.PacketPump` while inheriting the
    whole pooled reliable channel. Use
    :func:`repro.transport.fastudp.create_udp_transport` to pick a
    backend from :attr:`SwimConfig.transport_backend`.
    """

    #: Backend name reported in stats/metrics (overridden by subclasses).
    backend = "asyncio"

    def __init__(
        self, local_address: str, config: Optional[SwimConfig] = None
    ) -> None:
        self._local_address = local_address
        self.config = config if config is not None else SwimConfig()
        self._handler: Optional[Callable[[bytes, str, bool], None]] = None
        self._udp: Optional[asyncio.DatagramTransport] = None
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._closed = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._channels: Dict[str, _PeerChannel] = {}
        self._pending_sends: set = set()
        self._reaper: Optional[asyncio.Task] = None
        self._stats = TransportStats()
        self._faults: Optional[FaultInjector] = None
        if self.config.fault_plan is not None:
            self.set_fault_plan(self.config.fault_plan)
        #: Called with the destination address when a reliable send fails
        #: permanently (wired to the node's local-health hook by
        #: :class:`UdpMember`).
        self.on_reliable_failure: Optional[Callable[[str], None]] = None

    @classmethod
    async def create(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[SwimConfig] = None,
    ) -> "UdpTransport":
        loop = asyncio.get_running_loop()
        udp_transport, protocol = await loop.create_datagram_endpoint(
            _UdpProtocol, local_addr=(host, port)
        )
        udp_sock = udp_transport.get_extra_info("socket")
        if udp_sock is not None:
            _request_socket_buffers(udp_sock)
        bound_host, bound_port = udp_transport.get_extra_info("sockname")[:2]
        self = cls(f"{bound_host}:{bound_port}", config)
        self._loop = loop
        self._udp = udp_transport
        buffered, dropped = protocol.set_owner(self)
        if buffered:
            self._stats.incr("datagrams_buffered_early", buffered)
        if dropped:
            self._stats.incr("datagrams_dropped_early", dropped)
        await self._start_reliable(bound_host, bound_port)
        return self

    async def _start_reliable(self, host: str, port: int) -> None:
        """Start the TCP side channel (server + idle reaper) on the same
        host/port the datagram socket is bound to. Shared by every
        backend — the reliable channel is backend-independent."""
        self._tcp_server = await asyncio.start_server(
            self._on_tcp_connection, host=host, port=port
        )
        self._reaper = self._loop.create_task(self._reap_idle_loop())

    @property
    def local_address(self) -> str:
        return self._local_address

    @property
    def stats(self) -> TransportStats:
        """Channel-level counters (see :class:`TransportStats`)."""
        return self._stats

    @property
    def closed(self) -> bool:
        return self._closed

    def use_stats(self, stats: TransportStats) -> None:
        """Redirect counting into ``stats`` (folding in anything already
        counted), so transport events surface in a node's telemetry."""
        stats.merge(self._stats)
        stats.backend = self.backend
        self._stats = stats

    def loop_time(self) -> float:
        return self._loop.time()

    # ------------------------------------------------------------------ #
    # Fault injection (see repro.faults and docs/SOAK.md)
    # ------------------------------------------------------------------ #

    @property
    def fault_injector(self) -> Optional[FaultInjector]:
        """The active injector, or ``None`` (introspection for tests)."""
        return self._faults

    def set_fault_plan(self, plan: Optional[FaultPlan]) -> None:
        """Arm (or with ``None`` disarm) a fault plan on the live
        transport. The soak launcher uses this path — via the member
        process's plan-file watcher — to arm an already-converged
        cluster against a shared wall-clock epoch; static plans arrive
        through ``SwimConfig(fault_plan=...)`` at construction."""
        self._faults = FaultInjector(plan) if plan is not None else None

    def _fault_drop_datagram(self, peer: str, outbound: bool) -> bool:
        if self._faults is None:
            return False
        if self._faults.drop_datagram(peer, time.time(), outbound):
            self._stats.incr(
                "faults_datagrams_dropped_out"
                if outbound
                else "faults_datagrams_dropped_in"
            )
            return True
        return False

    def _fault_block_reliable(self, peer: str) -> bool:
        if self._faults is None:
            return False
        if self._faults.block_reliable(peer, time.time()):
            self._stats.incr("faults_reliable_blocked")
            return True
        return False

    def pooled_connections(self, destination: str) -> int:
        """Idle pooled connections to ``destination`` (introspection)."""
        channel = self._channels.get(destination)
        return channel.idle_count if channel is not None else 0

    def bind(self, handler: Callable[[bytes, str, bool], None]) -> None:
        self._handler = handler

    def send(self, destination: str, payload: bytes, reliable: bool = False) -> None:
        if self._closed:
            return
        if reliable:
            if self._fault_block_reliable(destination):
                self._stats.incr("reliable_send_failed")
                if self.on_reliable_failure is not None:
                    self.on_reliable_failure(destination)
                return
            task = asyncio.ensure_future(self._send_reliable(destination, payload))
            self._pending_sends.add(task)
            task.add_done_callback(self._pending_sends.discard)
        else:
            if self._fault_drop_datagram(destination, outbound=True):
                return
            try:
                self._udp.sendto(payload, parse_address(destination))
            except (OSError, ValueError):
                self._stats.incr("udp_send_error")
                return
            # One datagram per syscall is what defines this backend; the
            # counter/batch pair makes that visible next to the batched
            # backend's numbers on the same dashboards.
            self._stats.incr("udp_send_syscalls")
            self._stats.record_batch("send", 1)

    async def _send_reliable(self, destination: str, payload: bytes) -> None:
        try:
            host, port = parse_address(destination)
        except ValueError:
            self._stats.incr("reliable_send_failed")
            return
        channel = self._channels.get(destination)
        if channel is None:
            channel = self._channels[destination] = _PeerChannel(self, host, port)
        addr = self._local_address.encode("utf-8")
        frame = _FRAME.pack(len(addr), len(payload)) + addr + payload
        ok = await channel.send(frame)
        if not ok and not self._closed and self.on_reliable_failure is not None:
            self.on_reliable_failure(destination)

    async def _on_tcp_connection(self, reader, writer) -> None:
        """Serve one inbound reliable connection: a loop of length-prefixed
        frames until the peer closes (peers pool connections, so many
        frames per connection is the common case)."""
        try:
            while True:
                try:
                    header = await reader.readexactly(_FRAME.size)
                except asyncio.IncompleteReadError as exc:
                    if exc.partial:
                        self._stats.incr("frames_truncated")
                    return
                addr_len, payload_len = _FRAME.unpack(header)
                if payload_len > MAX_FRAME_PAYLOAD:
                    self._stats.incr("frames_oversized")
                    return
                try:
                    addr_bytes = await reader.readexactly(addr_len)
                    payload = await reader.readexactly(payload_len)
                    addr = addr_bytes.decode("utf-8")
                except (asyncio.IncompleteReadError, UnicodeDecodeError):
                    self._stats.incr("frames_truncated")
                    return
                self._stats.incr("frames_received")
                if self._faults is not None and self._faults.partitioned_from(
                    addr, time.time()
                ):
                    # Inbound half of a partition: the peer's frame made
                    # it through TCP before both sides armed, or only
                    # this side carries the window — drop it here so the
                    # cut is symmetric regardless.
                    self._stats.incr("faults_reliable_blocked")
                    continue
                if self._handler is not None:
                    self._handler(payload, addr, True)
        except OSError:
            pass
        finally:
            await _close_writer(writer)

    def _on_datagram(self, data: bytes, addr) -> None:
        self._stats.incr("udp_recv_syscalls")
        self._stats.record_batch("recv", 1)
        source = f"{addr[0]}:{addr[1]}"
        if self._fault_drop_datagram(source, outbound=False):
            return
        if self._handler is not None:
            self._handler(data, source, False)

    async def _reap_idle_loop(self) -> None:
        idle_timeout = self.config.reliable_idle_timeout
        interval = max(0.05, idle_timeout / 4)
        while True:
            await asyncio.sleep(interval)
            now = self.loop_time()
            for address, channel in list(self._channels.items()):
                await channel.reap_idle(now, idle_timeout)
                if channel.unused:
                    del self._channels[address]

    async def close(self) -> None:
        self._closed = True
        if self._reaper is not None:
            self._reaper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._reaper
            self._reaper = None
        pending = list(self._pending_sends)
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        for channel in self._channels.values():
            await channel.close()
        self._channels.clear()
        if self._udp is not None:
            self._udp.close()
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()


class UdpMember:
    """A fully wired SWIM/Lifeguard member on real sockets.

    The asyncio analogue of what :class:`~repro.sim.runtime.SimCluster`
    builds per member in the simulator. Transport events are folded into
    ``node.telemetry.transport`` and permanent reliable-send failures
    feed the node's local-health hook.

    When ``config.admin_port`` is set (``0`` = ephemeral), an
    :class:`~repro.ops.http.AdminServer` is started alongside the member:
    its metrics registry snapshots this node at scrape time, the node's
    ack-latency hook feeds the probe-RTT histogram, and membership events
    are teed into the server's bounded event stream.
    """

    def __init__(self, node: SwimNode, transport: UdpTransport, admin=None) -> None:
        self.node = node
        self.transport = transport
        #: The attached :class:`~repro.ops.http.AdminServer`, or ``None``.
        self.admin = admin

    @classmethod
    async def create(
        cls,
        name: str,
        config: Optional[SwimConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        listener: Optional[EventListener] = None,
        rng: Optional[random.Random] = None,
        meta: bytes = b"",
        on_user_event=None,
    ) -> "UdpMember":
        config = config if config is not None else SwimConfig.lifeguard()
        # Late import: fastudp subclasses UdpTransport, so the factory
        # lives there and cannot be imported at module load time.
        from repro.transport.fastudp import create_udp_transport

        transport = await create_udp_transport(host, port, config=config)
        scheduler = AsyncioScheduler()
        node = SwimNode(
            name,
            config,
            clock=scheduler.time,
            scheduler=scheduler,
            transport=transport,
            rng=rng,
            listener=listener,
            meta=meta,
            on_user_event=on_user_event,
        )
        transport.bind(node.handle_packet)
        transport.use_stats(node.telemetry.transport)
        transport.on_reliable_failure = node.note_reliable_send_failure
        admin = None
        if config.admin_port is not None:
            from repro.ops.http import AdminServer

            try:
                admin = await AdminServer.start(
                    node, host=config.admin_host, port=config.admin_port
                )
            except OSError:
                await transport.close()
                raise
        return cls(node, transport, admin)

    @property
    def address(self) -> str:
        return self.transport.local_address

    @property
    def admin_address(self) -> Optional[str]:
        """``host:port`` of the admin API, or ``None`` when disabled."""
        return self.admin.address if self.admin is not None else None

    def start(self) -> None:
        self.node.start()

    def join(self, seed_addresses) -> None:
        self.node.join(seed_addresses)

    async def stop(self) -> None:
        if self.node.running:
            self.node.stop()
        if self.admin is not None:
            await self.admin.close()
        await self.transport.close()
