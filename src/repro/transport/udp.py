"""Real-network runtime: asyncio UDP datagrams plus a TCP side channel.

This is the deployment face of the library — the same
:class:`~repro.swim.node.SwimNode` that runs under the simulator runs
here unchanged, wired to:

* an asyncio **clock/scheduler adapter** (:class:`AsyncioScheduler`) over
  ``loop.time()`` / ``loop.call_at``;
* a **UDP socket** for the datagram channel (probes and gossip);
* a lightweight **TCP listener** for the reliable channel (anti-entropy
  push/pull sync and the fallback probe), with one short-lived connection
  per message, length-prefixed and carrying the sender's canonical
  address so replies can be routed.

Addresses are ``"host:port"`` strings throughout, matching the address
field gossiped in ``alive`` messages.
"""

from __future__ import annotations

import asyncio
import random
import struct
from typing import Callable, Optional, Tuple

from repro.config import SwimConfig
from repro.swim.events import EventListener
from repro.swim.node import SwimNode

_FRAME = struct.Struct(">HI")  # address length, payload length


def parse_address(address: str) -> Tuple[str, int]:
    """Split ``"host:port"`` into a ``(host, port)`` pair."""
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"not a host:port address: {address!r}")
    return host, int(port)


class AsyncioScheduler:
    """Adapter satisfying :class:`repro.runtime.Scheduler` on an event loop."""

    __slots__ = ("_loop",)

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self._loop = loop if loop is not None else asyncio.get_event_loop()

    def time(self) -> float:
        return self._loop.time()

    def call_at(self, when: float, callback: Callable[[], None]):
        return self._loop.call_at(when, callback)


class _UdpProtocol(asyncio.DatagramProtocol):
    def __init__(self, owner: "UdpTransport") -> None:
        self._owner = owner

    def datagram_received(self, data: bytes, addr) -> None:
        self._owner._on_datagram(data, addr)

    def error_received(self, exc) -> None:  # pragma: no cover - OS specific
        pass


class UdpTransport:
    """Satisfies :class:`repro.runtime.Transport` over real sockets.

    Create with :meth:`UdpTransport.create` inside a running event loop.
    """

    def __init__(self, local_address: str) -> None:
        self._local_address = local_address
        self._handler: Optional[Callable[[bytes, str, bool], None]] = None
        self._udp: Optional[asyncio.DatagramTransport] = None
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._closed = False

    @classmethod
    async def create(cls, host: str = "127.0.0.1", port: int = 0) -> "UdpTransport":
        loop = asyncio.get_event_loop()
        udp_transport, _protocol = await loop.create_datagram_endpoint(
            lambda: _UdpProtocol(None),  # placeholder, patched below
            local_addr=(host, port),
        )
        bound_host, bound_port = udp_transport.get_extra_info("sockname")[:2]
        self = cls(f"{bound_host}:{bound_port}")
        # Re-point the protocol at the constructed instance.
        _protocol._owner = self
        self._udp = udp_transport
        self._tcp_server = await asyncio.start_server(
            self._on_tcp_connection, host=bound_host, port=bound_port
        )
        return self

    @property
    def local_address(self) -> str:
        return self._local_address

    def bind(self, handler: Callable[[bytes, str, bool], None]) -> None:
        self._handler = handler

    def send(self, destination: str, payload: bytes, reliable: bool = False) -> None:
        if self._closed:
            return
        if reliable:
            asyncio.ensure_future(self._send_reliable(destination, payload))
        else:
            try:
                self._udp.sendto(payload, parse_address(destination))
            except (OSError, ValueError):
                pass

    async def _send_reliable(self, destination: str, payload: bytes) -> None:
        try:
            host, port = parse_address(destination)
            _reader, writer = await asyncio.open_connection(host, port)
        except (OSError, ValueError):
            return
        try:
            addr = self._local_address.encode("utf-8")
            writer.write(_FRAME.pack(len(addr), len(payload)) + addr + payload)
            await writer.drain()
            writer.close()
        except OSError:
            pass

    async def _on_tcp_connection(self, reader, writer) -> None:
        try:
            header = await reader.readexactly(_FRAME.size)
            addr_len, payload_len = _FRAME.unpack(header)
            addr = (await reader.readexactly(addr_len)).decode("utf-8")
            payload = await reader.readexactly(payload_len)
        except (asyncio.IncompleteReadError, OSError):
            return
        finally:
            writer.close()
        if self._handler is not None:
            self._handler(payload, addr, True)

    def _on_datagram(self, data: bytes, addr) -> None:
        if self._handler is not None:
            self._handler(data, f"{addr[0]}:{addr[1]}", False)

    async def close(self) -> None:
        self._closed = True
        if self._udp is not None:
            self._udp.close()
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()


class UdpMember:
    """A fully wired SWIM/Lifeguard member on real sockets.

    The asyncio analogue of what :class:`~repro.sim.runtime.SimCluster`
    builds per member in the simulator.
    """

    def __init__(self, node: SwimNode, transport: UdpTransport) -> None:
        self.node = node
        self.transport = transport

    @classmethod
    async def create(
        cls,
        name: str,
        config: Optional[SwimConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        listener: Optional[EventListener] = None,
        rng: Optional[random.Random] = None,
        meta: bytes = b"",
        on_user_event=None,
    ) -> "UdpMember":
        transport = await UdpTransport.create(host, port)
        scheduler = AsyncioScheduler()
        node = SwimNode(
            name,
            config if config is not None else SwimConfig.lifeguard(),
            clock=scheduler.time,
            scheduler=scheduler,
            transport=transport,
            rng=rng,
            listener=listener,
            meta=meta,
            on_user_event=on_user_event,
        )
        transport.bind(node.handle_packet)
        return cls(node, transport)

    @property
    def address(self) -> str:
        return self.transport.local_address

    def start(self) -> None:
        self.node.start()

    def join(self, seed_addresses) -> None:
        self.node.join(seed_addresses)

    async def stop(self) -> None:
        if self.node.running:
            self.node.stop()
        await self.transport.close()
