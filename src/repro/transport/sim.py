"""Transport adapter for the simulated network."""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.network import SimNetwork


class SimTransport:
    """Binds one member name to a :class:`~repro.sim.network.SimNetwork`.

    Satisfies :class:`repro.runtime.Transport`. Inbound packets are routed
    to the handler installed with :meth:`bind`.
    """

    __slots__ = ("_address", "_network", "_handler")

    def __init__(self, address: str, network: SimNetwork) -> None:
        self._address = address
        self._network = network
        self._handler: Optional[Callable[[bytes, str, bool], None]] = None
        network.register(address, self._on_packet)

    @property
    def local_address(self) -> str:
        return self._address

    def bind(self, handler: Callable[[bytes, str, bool], None]) -> None:
        """Install the inbound packet handler
        (``handler(payload, from_address, reliable)``)."""
        self._handler = handler

    def send(self, destination: str, payload: bytes, reliable: bool = False) -> None:
        self._network.send(self._address, destination, payload, reliable)

    def close(self) -> None:
        self._network.unregister(self._address)
        self._handler = None

    def _on_packet(self, payload: bytes, from_address: str, reliable: bool) -> None:
        if self._handler is not None:
            self._handler(payload, from_address, reliable)
