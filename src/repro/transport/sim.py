"""Transport adapter for the simulated network."""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.network import SimNetwork


class SimTransport:
    """Binds one member name to a :class:`~repro.sim.network.SimNetwork`.

    Satisfies :class:`repro.runtime.Transport`. Inbound packets are routed
    to the handler installed with :meth:`bind`.

    Like :class:`repro.transport.udp.UdpTransport`, the adapter exposes an
    :attr:`on_reliable_failure` hook that fires (with the destination
    address) when a reliable send is severed by a simulated partition —
    the fabric's analogue of exhausting TCP connect retries — so
    Lifeguard's ``RELIABLE_SEND_FAILED`` evidence flows identically under
    simulation and on real sockets.
    """

    __slots__ = ("_address", "_network", "_handler", "_on_reliable_failure")

    def __init__(self, address: str, network: SimNetwork) -> None:
        self._address = address
        self._network = network
        self._handler: Optional[Callable[[bytes, str, bool], None]] = None
        #: Called with the destination address when a reliable send fails
        #: permanently (same contract as the UDP transport's hook).
        self._on_reliable_failure: Optional[Callable[[str], None]] = None
        network.register(address, self._on_packet)
        network.register_failure_handler(address, self._on_failure)

    @property
    def on_reliable_failure(self) -> Optional[Callable[[str], None]]:
        return self._on_reliable_failure

    @on_reliable_failure.setter
    def on_reliable_failure(self, handler: Optional[Callable[[str], None]]) -> None:
        self._on_reliable_failure = handler

    @property
    def local_address(self) -> str:
        return self._address

    def bind(self, handler: Callable[[bytes, str, bool], None]) -> None:
        """Install the inbound packet handler
        (``handler(payload, from_address, reliable)``)."""
        self._handler = handler

    def send(self, destination: str, payload: bytes, reliable: bool = False) -> None:
        self._network.send(self._address, destination, payload, reliable)

    def close(self) -> None:
        self._network.unregister(self._address)
        self._handler = None

    def _on_packet(self, payload: bytes, from_address: str, reliable: bool) -> None:
        if self._handler is not None:
            self._handler(payload, from_address, reliable)

    def _on_failure(self, destination: str) -> None:
        if self._on_reliable_failure is not None:
            self._on_reliable_failure(destination)
