"""Batched-syscall UDP fast path and transport-backend selection.

The default :class:`~repro.transport.udp.UdpTransport` pays one
``sendto``/``recvfrom`` syscall (plus one event-loop callback) per
datagram, which makes a real cluster syscall-bound long before it is
protocol-bound. Lifeguard's thesis is that slow local message
processing manufactures false positives, so the packet path being fast
is protocol fidelity, not just throughput. This module provides:

* :class:`PacketPump` — a raw nonblocking UDP socket driven by
  ``loop.add_reader``/``add_writer`` that moves up to *batch_size*
  datagrams per syscall with Linux ``recvmmsg``/``sendmmsg`` (bound via
  :mod:`ctypes`; no extra packages). Where those syscalls are
  unavailable the pump degrades to a portable drain loop — one
  ``recvfrom_into``/``sendto`` per datagram, but still amortising the
  event-loop wakeup across every queued packet.
* :class:`BatchedUdpTransport` — a :class:`UdpTransport` subclass that
  swaps only the datagram path for a :class:`PacketPump`; the pooled
  TCP reliable channel, fault handling, and stats plumbing are
  inherited unchanged. Received payloads are dispatched as zero-copy
  ``memoryview`` slices of the receive slots (the codec materialises
  retained fields, see :func:`repro.swim.codec.decode`), and
  :meth:`BatchedUdpTransport.send_encoded` reuses a per-transport
  scratch buffer via :func:`repro.swim.codec.encode_into` so
  steady-state probe/ack traffic allocates near-zero.
* :class:`UvloopUdpTransport` + :func:`install_uvloop` — opt-in uvloop
  integration: the stock asyncio datagram path running on uvloop's
  libuv loop. Cleanly gated: selecting it without uvloop installed
  raises a :class:`RuntimeError` that says so.
* :func:`create_udp_transport` — the factory keyed by
  :attr:`SwimConfig.transport_backend` that
  :class:`~repro.transport.udp.UdpMember` uses.

Receive-buffer lifetime: the ``memoryview`` handed to the handler
aliases a pump-owned slot that is reused after the handler returns.
Handlers must either finish with the bytes synchronously (the SWIM
node decodes immediately; the codec copies anything it keeps) or copy
explicitly. The same applies to buffers passed to
:meth:`PacketPump.send` — they are copied before the call returns, so
callers may reuse their scratch immediately.
"""

from __future__ import annotations

import asyncio
import ctypes
import errno
import socket
import sys
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

from repro.config import SwimConfig
from repro.metrics.telemetry import TransportStats
from repro.swim import codec
from repro.transport.udp import (
    UdpTransport,
    _request_socket_buffers,
    parse_address,
)

# ---------------------------------------------------------------------------
# ctypes bindings for recvmmsg/sendmmsg (Linux only; no extra packages).
# ---------------------------------------------------------------------------

#: recv/send without blocking even if the socket were blocking.
MSG_DONTWAIT = 0x40
#: Kernel flag: the datagram was longer than the buffer and got cut.
MSG_TRUNC = 0x20


class _Iovec(ctypes.Structure):
    _fields_ = [("iov_base", ctypes.c_void_p), ("iov_len", ctypes.c_size_t)]


class _SockaddrIn(ctypes.Structure):
    # sin_port holds network byte order in native storage: assign with
    # socket.htons(), read back with socket.ntohs().
    _fields_ = [
        ("sin_family", ctypes.c_uint16),
        ("sin_port", ctypes.c_uint16),
        ("sin_addr", ctypes.c_uint8 * 4),
        ("sin_zero", ctypes.c_uint8 * 8),
    ]


class _Msghdr(ctypes.Structure):
    _fields_ = [
        ("msg_name", ctypes.c_void_p),
        ("msg_namelen", ctypes.c_uint32),
        ("msg_iov", ctypes.POINTER(_Iovec)),
        ("msg_iovlen", ctypes.c_size_t),
        ("msg_control", ctypes.c_void_p),
        ("msg_controllen", ctypes.c_size_t),
        ("msg_flags", ctypes.c_int),
    ]


class _Mmsghdr(ctypes.Structure):
    _fields_ = [("msg_hdr", _Msghdr), ("msg_len", ctypes.c_uint)]


def _load_mmsg():
    """Bind libc's recvmmsg/sendmmsg; ``(None, None)`` where absent."""
    if not sys.platform.startswith("linux"):
        return None, None
    try:
        libc = ctypes.CDLL(None, use_errno=True)
        recvmmsg = libc.recvmmsg
        sendmmsg = libc.sendmmsg
    except (OSError, AttributeError):
        return None, None
    recvmmsg.argtypes = [
        ctypes.c_int,
        ctypes.POINTER(_Mmsghdr),
        ctypes.c_uint,
        ctypes.c_int,
        ctypes.c_void_p,
    ]
    recvmmsg.restype = ctypes.c_int
    sendmmsg.argtypes = [
        ctypes.c_int,
        ctypes.POINTER(_Mmsghdr),
        ctypes.c_uint,
        ctypes.c_int,
    ]
    sendmmsg.restype = ctypes.c_int
    return recvmmsg, sendmmsg


_recvmmsg, _sendmmsg = _load_mmsg()

#: True when the batched syscalls are actually bindable on this box.
HAVE_MMSG = _recvmmsg is not None


def mmsg_available() -> bool:
    """Whether ``recvmmsg``/``sendmmsg`` are usable on this platform.

    The ``"batched"`` backend works either way — without them the
    :class:`PacketPump` falls back to a portable per-datagram drain —
    but tests asserting true multi-datagram syscall batches should
    skip when this is ``False``.
    """
    return HAVE_MMSG


_Payload = Union[bytes, bytearray, memoryview]


class PacketPump:
    """Batched datagram mover over one raw nonblocking UDP socket.

    Receive: registered with ``loop.add_reader``; each readiness
    callback drains up to ``batch_size * max_drain`` datagrams
    (``batch_size`` per ``recvmmsg``) and dispatches each as
    ``handler(payload, "ip:port")`` where ``payload`` is a
    ``memoryview`` slice of a pump-owned slot, valid only for the
    duration of the call.

    Send: :meth:`send` enqueues and schedules one flush per event-loop
    tick via ``call_soon``, so every datagram queued in the same tick
    (a probe fan-out, gossip to k targets, an echo burst) leaves in as
    few ``sendmmsg`` calls as possible. Non-``bytes`` payloads are
    copied into pooled buffers at enqueue time — callers may reuse
    their scratch immediately. When the socket's buffer fills the
    remainder stays queued behind ``loop.add_writer``.

    Syscall accounting goes to ``stats``: ``udp_recv_syscalls`` /
    ``udp_send_syscalls`` events plus a ``record_batch`` per syscall
    with the real datagram count (the portable fallback records size-1
    batches, which is the truth of what it does).
    """

    #: Per-slot buffer size; larger datagrams are truncated by the
    #: kernel (counted as ``datagrams_truncated``) on receive and sent
    #: via a plain ``sendto`` on the way out. SWIM packets are bounded
    #: by the configured MTU budget, far below this.
    DATAGRAM_SIZE = 9000

    _ADDR_CACHE_MAX = 4096

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        sock: socket.socket,
        handler: Callable[[memoryview, str], None],
        batch_size: int = 32,
        stats: Optional[TransportStats] = None,
        max_drain: int = 4,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self._loop = loop
        self._sock = sock
        self._fd = sock.fileno()
        self._handler = handler
        self._batch = batch_size
        self._max_drain = max(1, max_drain)
        self.stats = stats if stats is not None else TransportStats()
        self._closed = False
        self.uses_mmsg = HAVE_MMSG

        # -- send state ------------------------------------------------
        # Entries are (data, length, addr) where data is bytes or a
        # pooled bytearray and addr is a _SockaddrIn (mmsg) or a
        # (host, port) tuple (fallback).
        self._outbox: Deque[Tuple[object, int, object]] = deque()
        self._spare: List[bytearray] = []
        self._send_addrs: Dict[str, object] = {}
        self._flush_scheduled = False
        self._writer_armed = False

        if HAVE_MMSG:
            self._init_mmsg_arrays()
        else:
            self._rbuf = bytearray(self.DATAGRAM_SIZE)
            self._rview = memoryview(self._rbuf)
            self._recv_addrs: Dict[tuple, str] = {}

        loop.add_reader(self._fd, self._on_readable)

    def _init_mmsg_arrays(self) -> None:
        batch, size = self._batch, self.DATAGRAM_SIZE
        # Receive side: everything preallocated once; the per-item
        # ctypes wrappers and memoryviews are also cached because array
        # indexing constructs a fresh wrapper object on every access.
        self._rbufs = [(ctypes.c_char * size)() for _ in range(batch)]
        self._raddrs = (_SockaddrIn * batch)()
        self._riovs = (_Iovec * batch)()
        self._rhdrs = (_Mmsghdr * batch)()
        self._rhdr_objs = [self._rhdrs[i] for i in range(batch)]
        self._raddr_objs = [self._raddrs[i] for i in range(batch)]
        self._rviews = [memoryview(b).cast("B") for b in self._rbufs]
        self._raddr_views = [
            memoryview(self._raddrs[i]).cast("B") for i in range(batch)
        ]
        for i in range(batch):
            self._riovs[i].iov_base = ctypes.cast(
                self._rbufs[i], ctypes.c_void_p
            )
            self._riovs[i].iov_len = size
            hdr = self._rhdrs[i].msg_hdr
            hdr.msg_name = ctypes.addressof(self._raddrs[i])
            hdr.msg_namelen = ctypes.sizeof(_SockaddrIn)
            hdr.msg_iov = ctypes.pointer(self._riovs[i])
            hdr.msg_iovlen = 1
        self._recv_strs: Dict[bytes, str] = {}

        # Send side: slot buffers the flush copies payloads into, so
        # iov_base pointers are stable across the syscall.
        self._sbufs = [(ctypes.c_char * size)() for _ in range(batch)]
        self._sviews = [memoryview(b).cast("B") for b in self._sbufs]
        self._siovs = (_Iovec * batch)()
        self._shdrs = (_Mmsghdr * batch)()
        self._shdr_objs = [self._shdrs[i] for i in range(batch)]
        self._siov_objs = [self._siovs[i] for i in range(batch)]
        for i in range(batch):
            self._siovs[i].iov_base = ctypes.cast(
                self._sbufs[i], ctypes.c_void_p
            )
            hdr = self._shdrs[i].msg_hdr
            hdr.msg_iov = ctypes.pointer(self._siovs[i])
            hdr.msg_iovlen = 1
            hdr.msg_namelen = ctypes.sizeof(_SockaddrIn)

        # Flat integer views over the header/iovec arrays. The hot
        # loops poke msg_name/iov_len and read msg_len/msg_flags
        # through these instead of the ctypes attribute protocol,
        # which constructs a fresh wrapper object per access and
        # dominates the per-datagram cost otherwise. Offsets come
        # from ctypes itself, so any platform where the fields are
        # not 8-byte/4-byte aligned words simply keeps the (slower,
        # always-correct) attribute path.
        self._flat = (
            ctypes.sizeof(ctypes.c_void_p) == 8
            and ctypes.sizeof(ctypes.c_size_t) == 8
            and ctypes.sizeof(_Mmsghdr) % 8 == 0
            and ctypes.sizeof(_Iovec) % 8 == 0
        )
        if self._flat:
            self._hdr_stride_i = ctypes.sizeof(_Mmsghdr) // 4
            self._hdr_stride_q = ctypes.sizeof(_Mmsghdr) // 8
            self._iov_stride_q = ctypes.sizeof(_Iovec) // 8
            self._flags_idx = _Msghdr.msg_flags.offset // 4
            self._len_idx = _Mmsghdr.msg_len.offset // 4
            self._name_idx = _Msghdr.msg_name.offset // 8
            self._iovlen_idx = _Iovec.iov_len.offset // 8
            self._rhdr_i = memoryview(self._rhdrs).cast("B").cast("I")
            self._shdr_q = memoryview(self._shdrs).cast("B").cast("Q")
            self._siov_q = memoryview(self._siovs).cast("B").cast("Q")

    # -- introspection --------------------------------------------------

    @property
    def local_address(self) -> str:
        host, port = self._sock.getsockname()[:2]
        return f"{host}:{port}"

    @property
    def pending_sends(self) -> int:
        return len(self._outbox)

    # -- receive path ---------------------------------------------------

    def _on_readable(self) -> None:
        if self._closed:
            return
        if HAVE_MMSG:
            self._drain_mmsg()
        else:
            self._drain_fallback()

    def _drain_mmsg(self) -> None:
        stats = self.stats
        batch = self._batch
        for _ in range(self._max_drain):
            n = _recvmmsg(self._fd, self._rhdrs, batch, MSG_DONTWAIT, None)
            if n <= 0:
                err = ctypes.get_errno() if n < 0 else 0
                if err == errno.EINTR:
                    continue
                if n < 0 and err not in (errno.EAGAIN, errno.EWOULDBLOCK):
                    stats.incr("udp_recv_error")
                break
            stats.incr("udp_recv_syscalls")
            stats.record_batch("recv", n)
            handler = self._handler
            if self._flat:
                hdr_i = self._rhdr_i
                stride = self._hdr_stride_i
                flags_idx = self._flags_idx
                len_idx = self._len_idx
                for i in range(n):
                    base = stride * i
                    if hdr_i[base + flags_idx] & MSG_TRUNC:
                        stats.incr("datagrams_truncated")
                        continue
                    handler(
                        self._rviews[i][: hdr_i[base + len_idx]],
                        self._source_str(i),
                    )
            else:
                for i in range(n):
                    hdr = self._rhdr_objs[i]
                    if hdr.msg_hdr.msg_flags & MSG_TRUNC:
                        stats.incr("datagrams_truncated")
                        continue
                    handler(
                        self._rviews[i][: hdr.msg_len], self._source_str(i)
                    )
            if n < batch:
                break

    def _source_str(self, i: int) -> str:
        # Cache keyed on the raw (port, addr) bytes of the sockaddr —
        # one small bytes object per packet instead of inet_ntoa plus
        # string formatting.
        key = bytes(self._raddr_views[i][2:8])
        addr = self._recv_strs.get(key)
        if addr is None:
            sa = self._raddr_objs[i]
            ip = socket.inet_ntoa(bytes(sa.sin_addr))
            addr = f"{ip}:{socket.ntohs(sa.sin_port)}"
            if len(self._recv_strs) >= self._ADDR_CACHE_MAX:
                self._recv_strs.clear()
            self._recv_strs[key] = addr
        return addr

    def _drain_fallback(self) -> None:
        stats = self.stats
        budget = self._batch * self._max_drain
        handler = self._handler
        for _ in range(budget):
            try:
                nbytes, addr = self._sock.recvfrom_into(self._rbuf)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                stats.incr("udp_recv_error")
                break
            stats.incr("udp_recv_syscalls")
            stats.record_batch("recv", 1)
            source = self._recv_addrs.get(addr)
            if source is None:
                source = f"{addr[0]}:{addr[1]}"
                if len(self._recv_addrs) >= self._ADDR_CACHE_MAX:
                    self._recv_addrs.clear()
                self._recv_addrs[addr] = source
            handler(self._rview[:nbytes], source)

    # -- send path ------------------------------------------------------

    def send(self, payload: _Payload, destination: str) -> None:
        """Queue one datagram for ``destination`` (``"host:port"``).

        Raises :class:`ValueError` on a malformed address and
        :class:`OSError` when the host does not resolve; syscall-level
        errors surface later, at flush, as ``udp_send_error`` counts.
        """
        if self._closed:
            return
        addr = self._send_addrs.get(destination)
        if addr is None:
            addr = self._resolve(destination)
        n = len(payload)
        if payload.__class__ is bytes:
            entry: Tuple[object, int, object] = (payload, n, addr)
        elif n <= self.DATAGRAM_SIZE:
            # Copy now so the caller's scratch is reusable on return.
            buf = self._spare.pop() if self._spare else bytearray(
                self.DATAGRAM_SIZE
            )
            buf[:n] = payload
            entry = (buf, n, addr)
        else:
            entry = (bytes(payload), n, addr)
        self._outbox.append(entry)
        if not self._flush_scheduled and not self._writer_armed:
            self._flush_scheduled = True
            self._loop.call_soon(self._flush)

    def _resolve(self, destination: str) -> object:
        host, port = parse_address(destination)
        if HAVE_MMSG:
            try:
                packed = socket.inet_aton(host)
            except OSError:
                packed = socket.inet_aton(socket.gethostbyname(host))
            sa = _SockaddrIn()
            sa.sin_family = socket.AF_INET
            sa.sin_port = socket.htons(port)
            ctypes.memmove(sa.sin_addr, packed, 4)
            # Pair the struct with its raw address so the flush loop
            # pokes a plain int instead of calling addressof per
            # datagram; the tuple also keeps the struct alive while
            # queued entries reference it.
            addr: object = (sa, ctypes.addressof(sa))
        else:
            addr = (host, port)
        if len(self._send_addrs) >= self._ADDR_CACHE_MAX:
            self._send_addrs.clear()
        self._send_addrs[destination] = addr
        return addr

    def flush_now(self) -> None:
        """Flush the outbox immediately instead of at the next tick."""
        self._flush()

    def _flush(self) -> None:
        self._flush_scheduled = False
        if self._closed:
            self._outbox.clear()
            return
        if HAVE_MMSG:
            self._flush_mmsg()
        else:
            self._flush_fallback()

    def _flush_mmsg(self) -> None:
        stats = self.stats
        outbox = self._outbox
        batch = self._batch
        size = self.DATAGRAM_SIZE
        sviews = self._sviews
        flat = self._flat
        if flat:
            shdr_q, siov_q = self._shdr_q, self._siov_q
            hdr_stride, iov_stride = self._hdr_stride_q, self._iov_stride_q
            name_idx, iovlen_idx = self._name_idx, self._iovlen_idx
        while outbox:
            k = 0
            for data, n, sa in outbox:
                if k >= batch:
                    break
                if n > size:
                    break  # oversized head handled below
                sviews[k][:n] = data if len(data) == n else memoryview(
                    data
                )[:n]
                if flat:
                    siov_q[iov_stride * k + iovlen_idx] = n
                    shdr_q[hdr_stride * k + name_idx] = sa[1]
                else:
                    self._siov_objs[k].iov_len = n
                    self._shdr_objs[k].msg_hdr.msg_name = sa[1]
                k += 1
            if k == 0:
                # Oversized datagram at the head: one plain sendto.
                data, n, sa = outbox.popleft()
                self._send_oversized(data, n, sa)
                continue
            sent = _sendmmsg(self._fd, self._shdrs, k, 0)
            if sent < 0:
                err = ctypes.get_errno()
                if err == errno.EINTR:
                    continue
                if err in (errno.EAGAIN, errno.EWOULDBLOCK):
                    self._arm_writer()
                    return
                # Destination-level error (ECONNREFUSED, EPERM, ...):
                # drop the head so the queue cannot spin, keep going.
                stats.incr("udp_send_error")
                self._recycle(outbox.popleft())
                continue
            stats.incr("udp_send_syscalls")
            stats.record_batch("send", sent)
            for _ in range(sent):
                self._recycle(outbox.popleft())
            if sent < k:
                self._arm_writer()
                return

    def _send_oversized(self, data: object, n: int, sa: object) -> None:
        try:
            if isinstance(sa, tuple) and isinstance(sa[0], _SockaddrIn):
                dest = (
                    socket.inet_ntoa(bytes(sa[0].sin_addr)),
                    socket.ntohs(sa[0].sin_port),
                )
            else:
                dest = sa  # type: ignore[assignment]
            self._sock.sendto(data, dest)  # type: ignore[arg-type]
        except OSError:
            self.stats.incr("udp_send_error")
        else:
            self.stats.incr("udp_send_syscalls")
            self.stats.record_batch("send", 1)
        self._recycle((data, n, sa))

    def _flush_fallback(self) -> None:
        stats = self.stats
        outbox = self._outbox
        while outbox:
            data, n, addr = outbox[0]
            payload = data if len(data) == n else memoryview(data)[:n]
            try:
                self._sock.sendto(payload, addr)  # type: ignore[arg-type]
            except (BlockingIOError, InterruptedError):
                self._arm_writer()
                return
            except OSError:
                stats.incr("udp_send_error")
                self._recycle(outbox.popleft())
                continue
            stats.incr("udp_send_syscalls")
            stats.record_batch("send", 1)
            self._recycle(outbox.popleft())

    def _recycle(self, entry: Tuple[object, int, object]) -> None:
        data = entry[0]
        if data.__class__ is bytearray and len(self._spare) < self._batch:
            self._spare.append(data)  # type: ignore[arg-type]

    def _arm_writer(self) -> None:
        if not self._writer_armed and not self._closed:
            self._writer_armed = True
            self._loop.add_writer(self._fd, self._on_writable)

    def _on_writable(self) -> None:
        self._loop.remove_writer(self._fd)
        self._writer_armed = False
        self._flush()

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._loop.remove_reader(self._fd)
        if self._writer_armed:
            self._loop.remove_writer(self._fd)
            self._writer_armed = False
        self._outbox.clear()
        self._sock.close()


class BatchedUdpTransport(UdpTransport):
    """``transport_backend="batched"``: UdpTransport with a PacketPump.

    Only the datagram path differs from the parent: a raw nonblocking
    socket pumped with ``recvmmsg``/``sendmmsg`` (portable fallback
    where unavailable), zero-copy receive dispatch, and per-tick send
    coalescing. The TCP reliable channel, retry/pool behaviour, fault
    surface, and address formats are inherited — the full transport
    fault suite runs identically against both backends.
    """

    backend = "batched"
    #: :meth:`send` copies (or fully consumes) the payload before
    #: returning, so callers — notably the SWIM node's packet builder —
    #: may pass a reusable scratch buffer instead of fresh ``bytes``.
    supports_buffer_send = True

    def __init__(
        self, local_address: str, config: Optional[SwimConfig] = None
    ) -> None:
        super().__init__(local_address, config)
        self._pump: Optional[PacketPump] = None
        self._scratch = bytearray()

    @classmethod
    async def create(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[SwimConfig] = None,
    ) -> "BatchedUdpTransport":
        loop = asyncio.get_running_loop()
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            sock.setblocking(False)
            _request_socket_buffers(sock)
            sock.bind((host, port))
            bound_host, bound_port = sock.getsockname()[:2]
            self = cls(f"{bound_host}:{bound_port}", config)
            self._loop = loop
            self._pump = PacketPump(
                loop,
                sock,
                self._on_pump_datagram,
                batch_size=self.config.transport_batch_size,
                stats=self._stats,
            )
        except OSError:
            sock.close()
            raise
        try:
            await self._start_reliable(bound_host, bound_port)
        except OSError:
            self._pump.close()
            raise
        return self

    @property
    def pump(self) -> PacketPump:
        """The datagram pump (introspection for tests/benchmarks)."""
        assert self._pump is not None
        return self._pump

    def use_stats(self, stats: TransportStats) -> None:
        super().use_stats(stats)
        if self._pump is not None:
            self._pump.stats = stats

    def send(
        self, destination: str, payload: bytes, reliable: bool = False
    ) -> None:
        if self._closed:
            return
        if reliable:
            super().send(destination, payload, reliable=True)
            return
        if self._fault_drop_datagram(destination, outbound=True):
            return
        try:
            self._pump.send(payload, destination)
        except (OSError, ValueError):
            self._stats.incr("udp_send_error")

    def send_encoded(self, destination: str, message: codec.Message) -> int:
        """Encode ``message`` straight into the transport's scratch
        buffer (:func:`repro.swim.codec.encode_into`) and queue it —
        the pump copies at enqueue, so the scratch is reused for every
        message and the steady-state datagram send path allocates
        near-zero. Returns the encoded size in bytes (for telemetry).
        The node prefers this over ``encode()`` + :meth:`send` when the
        transport offers it."""
        scratch = self._scratch
        del scratch[:]
        n = codec.encode_into(message, scratch)
        if not self._closed and not self._fault_drop_datagram(
            destination, outbound=True
        ):
            try:
                self._pump.send(scratch, destination)
            except (OSError, ValueError):
                self._stats.incr("udp_send_error")
        return n

    def _on_pump_datagram(self, payload: memoryview, source: str) -> None:
        # Syscall/batch accounting already happened in the pump.
        if self._fault_drop_datagram(source, outbound=False):
            return
        if self._handler is not None:
            self._handler(payload, source, False)

    async def close(self) -> None:
        self._closed = True
        if self._pump is not None:
            self._pump.close()
        await super().close()


# ---------------------------------------------------------------------------
# uvloop integration (opt-in, cleanly gated when not installed).
# ---------------------------------------------------------------------------


def uvloop_available() -> bool:
    """Whether the optional :mod:`uvloop` package is importable."""
    try:
        import uvloop  # noqa: F401
    except ImportError:
        return False
    return True


def install_uvloop() -> None:
    """Make uvloop the event-loop policy for subsequent ``asyncio.run``.

    Raises :class:`RuntimeError` with an actionable message when uvloop
    is not installed — the ``"uvloop"`` backend is strictly opt-in and
    never silently degrades to the stock loop.
    """
    try:
        import uvloop
    except ImportError as exc:
        raise RuntimeError(
            "transport_backend='uvloop' requires the optional uvloop "
            "package, which is not installed; install it or use the "
            "'batched' or 'asyncio' backend"
        ) from exc
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())


class UvloopUdpTransport(UdpTransport):
    """``transport_backend="uvloop"``: stock datagram path, libuv loop.

    uvloop accelerates the whole event loop (including the asyncio
    datagram protocol this inherits), so the transport itself is the
    parent unchanged — :meth:`create` just refuses to run on a
    non-uvloop loop, because silently delivering stock-loop performance
    under the "uvloop" label would be a lie in the benchmarks.
    """

    backend = "uvloop"

    @classmethod
    async def create(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[SwimConfig] = None,
    ) -> "UvloopUdpTransport":
        loop = asyncio.get_running_loop()
        if "uvloop" not in type(loop).__module__:
            if not uvloop_available():
                raise RuntimeError(
                    "transport_backend='uvloop' requires the optional "
                    "uvloop package, which is not installed; install it "
                    "or use the 'batched' or 'asyncio' backend"
                )
            raise RuntimeError(
                "transport_backend='uvloop' must run inside a uvloop "
                "event loop; call repro.transport.fastudp.install_uvloop() "
                "before asyncio.run()"
            )
        transport = await super().create(host, port, config=config)
        return transport  # type: ignore[return-value]


async def create_udp_transport(
    host: str = "127.0.0.1",
    port: int = 0,
    config: Optional[SwimConfig] = None,
) -> UdpTransport:
    """Create the UDP transport selected by ``config.transport_backend``.

    ``"asyncio"`` (the default) preserves the pre-backend behaviour
    exactly; ``"batched"`` returns a :class:`BatchedUdpTransport`;
    ``"uvloop"`` returns a :class:`UvloopUdpTransport` (raising
    :class:`RuntimeError` when uvloop is absent or not running).
    """
    config = config if config is not None else SwimConfig()
    backend = config.transport_backend
    if backend == "batched":
        return await BatchedUdpTransport.create(host, port, config=config)
    if backend == "uvloop":
        return await UvloopUdpTransport.create(host, port, config=config)
    return await UdpTransport.create(host, port, config=config)
