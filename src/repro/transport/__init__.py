"""Transports binding the sans-IO protocol node to an actual datapath.

* :class:`~repro.transport.sim.SimTransport` — the simulated network.
* :class:`~repro.transport.inmem.InMemoryFabric` — zero-latency direct
  delivery for unit tests (synchronous, no scheduler involvement).
* :class:`~repro.transport.udp.UdpRuntime` — real asyncio UDP/TCP for
  deploying the library on an actual network.
* :class:`~repro.transport.fastudp.BatchedUdpTransport` — the
  batched-syscall (``recvmmsg``/``sendmmsg``) datagram fast path;
  select a backend with
  :func:`~repro.transport.fastudp.create_udp_transport` via
  ``SwimConfig(transport_backend=...)``.
"""

from repro.transport.fastudp import (
    BatchedUdpTransport,
    PacketPump,
    UvloopUdpTransport,
    create_udp_transport,
    mmsg_available,
    uvloop_available,
)
from repro.transport.inmem import InMemoryFabric, InMemoryTransport
from repro.transport.sim import SimTransport
from repro.transport.udp import AsyncioScheduler, UdpMember, UdpTransport

__all__ = [
    "AsyncioScheduler",
    "BatchedUdpTransport",
    "InMemoryFabric",
    "InMemoryTransport",
    "PacketPump",
    "SimTransport",
    "UdpMember",
    "UdpTransport",
    "UvloopUdpTransport",
    "create_udp_transport",
    "mmsg_available",
    "uvloop_available",
]
