"""Transports binding the sans-IO protocol node to an actual datapath.

* :class:`~repro.transport.sim.SimTransport` — the simulated network.
* :class:`~repro.transport.inmem.InMemoryFabric` — zero-latency direct
  delivery for unit tests (synchronous, no scheduler involvement).
* :class:`~repro.transport.udp.UdpRuntime` — real asyncio UDP/TCP for
  deploying the library on an actual network.
"""

from repro.transport.inmem import InMemoryFabric, InMemoryTransport
from repro.transport.sim import SimTransport
from repro.transport.udp import AsyncioScheduler, UdpMember, UdpTransport

__all__ = [
    "AsyncioScheduler",
    "InMemoryFabric",
    "InMemoryTransport",
    "SimTransport",
    "UdpMember",
    "UdpTransport",
]
