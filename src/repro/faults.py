"""Declarative, clock-driven fault injection for the real transports.

The simulator injects faults by construction (:mod:`repro.sim.anomaly`,
:meth:`SimNetwork.partition <repro.sim.network.SimNetwork.partition>`);
a *real* cluster on one host has no such narrator — and reaching for
iptables would need root and leak state past the process. Instead the
chaos harness (:mod:`repro.soak`) hands every member a :class:`FaultPlan`
— a wall-clock schedule of loss and partition windows — and the member's
own :class:`~repro.transport.udp.UdpTransport` enforces it at the socket
boundary:

* **loss** windows drop outbound and inbound datagrams independently
  with the window's rate (UDP only — TCP retransmits through loss, as in
  the simulator's symmetric loss model);
* **partition** windows silently drop all datagrams to/from the listed
  peer addresses and fail reliable sends to them permanently (surfaced
  through ``on_reliable_failure``, exactly like a real severed path).

Every member of a soak run carries the same schedule translated to its
own viewpoint, so both sides of a partition drop symmetrically without
any coordination at runtime. Windows are anchored to an absolute
``epoch`` (unix time), letting the launcher arm hundreds of processes
against one shared timeline.

Plans are immutable and JSON round-trippable; they ride on
:attr:`SwimConfig.fault_plan <repro.config.SwimConfig.fault_plan>` (the
static hook) or are armed on a live transport via
:meth:`UdpTransport.set_fault_plan
<repro.transport.udp.UdpTransport.set_fault_plan>` (how the soak
launcher arms an already-converged cluster). Stdlib only, no imports
from the rest of the package — :mod:`repro.config` imports this module,
so it must sit below both config and the transports.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

PLAN_SCHEMA = "repro-fault-plan/v1"

#: Injectable fault kinds at the transport boundary.
FAULT_WINDOW_KINDS = ("loss", "partition")


@dataclass(frozen=True)
class FaultWindow:
    """One timed fault at one member's transport.

    ``start``/``end`` are offsets in seconds from the owning plan's
    ``epoch``. ``rate`` is the independent datagram drop probability for
    ``loss`` windows; ``peers`` is the tuple of ``host:port`` addresses
    cut off by a ``partition`` window.
    """

    kind: str
    start: float
    end: float
    rate: float = 0.0
    peers: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_WINDOW_KINDS:
            known = ", ".join(FAULT_WINDOW_KINDS)
            raise ValueError(f"fault window kind must be one of: {known}")
        if self.start < 0:
            raise ValueError("fault window start must be >= 0")
        if self.end <= self.start:
            raise ValueError("fault window end must be > start")
        if self.kind == "loss":
            if not 0.0 < self.rate <= 1.0:
                raise ValueError("loss rate must be in (0, 1]")
        if self.kind == "partition" and not self.peers:
            raise ValueError("partition window needs at least one peer")

    def as_dict(self) -> dict:
        out: dict = {"kind": self.kind, "start": self.start, "end": self.end}
        if self.kind == "loss":
            out["rate"] = self.rate
        if self.peers:
            out["peers"] = list(self.peers)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultWindow":
        return cls(
            kind=str(data["kind"]),
            start=float(data["start"]),
            end=float(data["end"]),
            rate=float(data.get("rate", 0.0)),
            peers=tuple(data.get("peers", ())),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A member's full fault schedule, anchored at ``epoch`` (unix time).

    Immutable and hashable so it can ride on the frozen
    :class:`~repro.config.SwimConfig`. ``seed`` makes the loss coin
    flips reproducible per member.
    """

    windows: Tuple[FaultWindow, ...] = ()
    epoch: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.windows, tuple):
            object.__setattr__(self, "windows", tuple(self.windows))

    @property
    def end(self) -> float:
        """Offset of the last window's end (0 for an empty plan)."""
        return max((w.end for w in self.windows), default=0.0)

    def as_dict(self) -> dict:
        return {
            "schema": PLAN_SCHEMA,
            "epoch": self.epoch,
            "seed": self.seed,
            "windows": [w.as_dict() for w in self.windows],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        schema = data.get("schema", PLAN_SCHEMA)
        if schema != PLAN_SCHEMA:
            raise ValueError(f"unknown fault plan schema: {schema!r}")
        return cls(
            windows=tuple(
                FaultWindow.from_dict(w) for w in data.get("windows", ())
            ),
            epoch=float(data.get("epoch", 0.0)),
            seed=int(data.get("seed", 0)),
        )

    def dumps(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps() + "\n")


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against a wall clock.

    One instance lives on each real transport; the hot-path queries are
    O(active windows) and the common case (no plan, or outside every
    window) is a couple of float compares.
    """

    __slots__ = ("plan", "rng", "dropped_out", "dropped_in", "blocked_reliable")

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = random.Random(plan.seed ^ 0xFA17)
        #: Injection counters (merged into TransportStats by the owner).
        self.dropped_out = 0
        self.dropped_in = 0
        self.blocked_reliable = 0

    def _active(self, now: float):
        offset = now - self.plan.epoch
        for window in self.plan.windows:
            if window.start <= offset < window.end:
                yield window

    def loss_rate(self, now: float) -> float:
        """Effective datagram loss probability at ``now`` (max of
        overlapping loss windows)."""
        rate = 0.0
        for window in self._active(now):
            if window.kind == "loss" and window.rate > rate:
                rate = window.rate
        return rate

    def partitioned_from(self, peer: str, now: float) -> bool:
        """Whether ``peer`` is cut off by an active partition window."""
        for window in self._active(now):
            if window.kind == "partition" and peer in window.peers:
                return True
        return False

    def drop_datagram(self, peer: str, now: float, outbound: bool) -> bool:
        """Decide one datagram's fate; counts the drop when taken."""
        if self.partitioned_from(peer, now):
            pass  # partition always drops
        else:
            rate = self.loss_rate(now)
            if rate <= 0.0 or self.rng.random() >= rate:
                return False
        if outbound:
            self.dropped_out += 1
        else:
            self.dropped_in += 1
        return True

    def block_reliable(self, peer: str, now: float) -> bool:
        """Whether a reliable send to ``peer`` must fail permanently."""
        if self.partitioned_from(peer, now):
            self.blocked_reliable += 1
            return True
        return False


def plan_digest(plans: Dict[str, FaultPlan]) -> dict:
    """A compact JSON summary of a per-member plan set (for reports)."""
    return {
        name: {
            "windows": len(plan.windows),
            "epoch": plan.epoch,
            "end": plan.end,
        }
        for name, plan in sorted(plans.items())
    }


def load_optional(path: Optional[str]) -> Optional[FaultPlan]:
    """Load a plan file if ``path`` is given, else ``None``."""
    return FaultPlan.load(path) if path else None
