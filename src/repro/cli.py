"""Command-line interface to the experiment harness and live clusters.

Run as ``python -m repro`` (or the ``lifeguard-repro`` entry point):

.. code-block:: console

    $ python -m repro threshold --config Lifeguard -c 8 -d 16.384
    $ python -m repro interval  --config SWIM -c 16 -d 8.192 -i 0.001
    $ python -m repro stress    --config Lifeguard --stressed 8
    $ python -m repro compare   -c 8 -d 16.384       # all five configs
    $ python -m repro watch 127.0.0.1:8787           # poll a live node

Each experiment subcommand runs one simulated experiment and prints its
metrics; ``compare`` runs the same experiment under every Table I
configuration. All four accept ``--json`` for machine-readable output in
the shared ops-plane schema (:mod:`repro.ops.schema`). ``watch`` polls a
live member's admin endpoint (see :mod:`repro.ops.http`).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import List, Optional

from repro.config import PROBE_SCHEDULER_NAMES, TRANSPORT_BACKEND_NAMES
from repro.harness.configurations import CONFIGURATION_NAMES
from repro.harness.interval import IntervalParams, run_interval
from repro.harness.schedulers import (
    SchedulerComparisonParams,
    run_scheduler_comparison,
)
from repro.harness.stress import StressParams, run_stress
from repro.harness.threshold import ThresholdParams, run_threshold
from repro.metrics.analysis import percentile_summary
from repro.ops.schema import envelope


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--config",
        default="Lifeguard",
        choices=CONFIGURATION_NAMES,
        help="Table I configuration to run (default: Lifeguard)",
    )
    parser.add_argument("-n", "--members", type=int, default=128,
                        help="group size (default: 128)")
    parser.add_argument("--alpha", type=float, default=5.0,
                        help="suspicion timeout alpha (default: 5)")
    parser.add_argument("--beta", type=float, default=6.0,
                        help="suspicion timeout beta (default: 6)")
    parser.add_argument("--seed", type=int, default=0,
                        help="simulation seed (default: 0)")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")


def _emit_json(kind: str, payload: dict) -> int:
    print(json.dumps(envelope(kind, payload), indent=2, sort_keys=True))
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lifeguard-repro",
        description="Run SWIM/Lifeguard experiments in the simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    threshold = sub.add_parser(
        "threshold", help="one synchronized anomaly set; measures latency"
    )
    _add_common(threshold)
    threshold.add_argument("-c", "--concurrent", type=int, default=4,
                           help="concurrent anomalies (default: 4)")
    threshold.add_argument("-d", "--duration", type=float, default=16.384,
                           help="anomaly duration, seconds (default: 16.384)")

    interval = sub.add_parser(
        "interval", help="cyclic anomalies; measures false positives/load"
    )
    _add_common(interval)
    interval.add_argument("-c", "--concurrent", type=int, default=4)
    interval.add_argument("-d", "--duration", type=float, default=8.192)
    interval.add_argument("-i", "--interval", type=float, default=0.001,
                          help="normal interval between anomalies (default: 0.001)")
    interval.add_argument("-t", "--test-time", type=float, default=120.0,
                          help="minimum test time, seconds (default: 120)")

    stress = sub.add_parser(
        "stress", help="CPU-exhaustion scenario (Figure 1)"
    )
    _add_common(stress)
    stress.add_argument("--stressed", type=int, default=4,
                        help="members under CPU stress (default: 4)")
    stress.add_argument("-t", "--stress-time", type=float, default=300.0,
                        help="stress duration, seconds (default: 300)")
    stress.add_argument("--zones", type=int, default=0,
                        help="run on a hierarchical zoned cluster with this "
                             "many zones (default: flat)")
    stress.add_argument("--shards", type=int, default=1,
                        help="worker processes for the zoned driver "
                             "(requires --zones; result is shard-independent)")
    stress.add_argument("--profile", metavar="PSTATS_OUT",
                        help="run under cProfile and write pstats data "
                             "to this path (summary on stderr)")

    compare = sub.add_parser(
        "compare", help="run one Interval experiment under all five configs"
    )
    _add_common(compare)
    compare.add_argument("-c", "--concurrent", type=int, default=8)
    compare.add_argument("-d", "--duration", type=float, default=8.192)
    compare.add_argument("-i", "--interval", type=float, default=0.001)
    compare.add_argument("-t", "--test-time", type=float, default=120.0)

    schedulers = sub.add_parser(
        "schedulers",
        help="compare probe-scheduling strategies (latency + false positives)",
    )
    _add_common(schedulers)
    schedulers.add_argument("-c", "--concurrent", type=int, default=4,
                            help="concurrent anomalies (default: 4)")
    schedulers.add_argument("-d", "--duration", type=float, default=16.384,
                            help="Threshold anomaly duration, seconds "
                                 "(default: 16.384)")
    schedulers.add_argument("-r", "--reps", type=int, default=3,
                            help="paired repetitions per strategy (default: 3)")
    schedulers.add_argument("-t", "--test-time", type=float, default=120.0,
                            help="minimum Interval (false-positive) test "
                                 "time, seconds (default: 120)")
    schedulers.add_argument("--strategies", nargs="+",
                            choices=PROBE_SCHEDULER_NAMES,
                            default=list(PROBE_SCHEDULER_NAMES),
                            help="strategies to compare (default: all)")

    check = sub.add_parser(
        "check",
        help="fuzz the protocol against the invariant oracles (repro.check)",
    )
    check.add_argument("--seeds", type=int, default=100,
                       help="number of generated scenarios to run (default: 100)")
    check.add_argument("--start-seed", type=int, default=0,
                       help="first seed of the sweep (default: 0)")
    check.add_argument("--stride", type=int, default=1,
                       help="check invariants every Nth event (default: 1)")
    check.add_argument("--no-shrink", action="store_true",
                       help="skip counterexample shrinking on failure")
    check.add_argument("--max-shrink", type=int, default=120,
                       help="re-runs allowed per shrink campaign (default: 120)")
    check.add_argument("--max-failures", type=int, default=5,
                       help="stop the sweep after this many failing seeds")
    check.add_argument("--partitions", type=int, default=1,
                       help="split the sweep into N interleaved seed "
                            "partitions, each with its own failure budget "
                            "(default: 1)")
    check.add_argument("--artifact-dir", default=".",
                       help="directory for minimal-repro JSON artifacts")
    check.add_argument("--replay", metavar="FILE",
                       help="re-run a saved artifact/scenario JSON instead "
                            "of sweeping")
    check.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of text")
    check.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the sweep (default: 1; "
                            "results are deterministic regardless)")
    check.add_argument("--zones", type=int, default=0,
                        help="fuzz hierarchical zoned clusters with this "
                             "many zones per scenario (default: flat)")
    check.add_argument("--shards", type=int, default=1,
                        help="with --zones: also self-check that the sharded "
                             "driver reproduces the 1-process trace with "
                             "this many worker processes")
    check.add_argument("--scheduler", choices=PROBE_SCHEDULER_NAMES,
                       help="fuzz with this probe-scheduling strategy on "
                            "every generated scenario (default: round-robin)")
    check.add_argument("--profile", metavar="PSTATS_OUT",
                       help="run under cProfile and write pstats data "
                            "to this path (summary on stderr)")

    packetbench = sub.add_parser(
        "packetbench",
        help="loopback UDP echo throughput for a transport backend "
             "(repro.transport.fastudp)",
    )
    packetbench.add_argument("--backend", default="asyncio",
                             choices=TRANSPORT_BACKEND_NAMES,
                             help="datagram backend to measure "
                                  "(default: asyncio)")
    packetbench.add_argument("--duration", type=float, default=1.0,
                             help="seconds per repetition (default: 1)")
    packetbench.add_argument("--payload-size", type=int, default=64,
                             help="datagram payload bytes (default: 64)")
    packetbench.add_argument("--batch-size", type=int, default=32,
                             help="max datagrams per syscall on the batched "
                                  "backend (default: 32)")
    packetbench.add_argument("--window", type=int, default=256,
                             help="packets kept in flight (default: 256)")
    packetbench.add_argument("-r", "--reps", type=int, default=3,
                             help="repetitions; best throughput is reported "
                                  "(default: 3)")
    packetbench.add_argument("--in-process", action="store_true",
                             help="run reps inside this process instead of "
                                  "fresh subprocesses (faster, but the "
                                  "asyncio baseline then depends on this "
                                  "process's allocator history)")
    packetbench.add_argument("--json", action="store_true",
                             help="emit machine-readable JSON instead of text")

    member = sub.add_parser(
        "member",
        help="run one real UDP member process (spawned by repro soak)",
        add_help=False,
    )
    member.add_argument("member_args", nargs=argparse.REMAINDER,
                        help="flags for repro.soak.member_main")

    soak = sub.add_parser(
        "soak",
        help="chaos-soak a real local cluster against a JSON schedule "
             "(repro.soak; see docs/SOAK.md)",
    )
    soak.add_argument("-n", "--members", type=int, default=12,
                      help="member processes to launch (default: 12)")
    soak.add_argument("--schedule", required=True, metavar="FILE",
                      help="chaos schedule JSON (repro-soak-schedule/v1)")
    soak.add_argument("--duration", type=float, default=60.0,
                      help="soak seconds after the chaos epoch "
                           "(default: 60)")
    soak.add_argument("--report", metavar="DIR", default="",
                      help="run/report directory (default: soak-runs/<ts>)")
    soak.add_argument("--probe-interval", type=float, default=0.5,
                      help="base probe interval, seconds (default: 0.5)")
    soak.add_argument("--alpha", type=float, default=5.0,
                      help="suspicion alpha (default: 5)")
    soak.add_argument("--beta", type=float, default=6.0,
                      help="suspicion beta (default: 6)")
    soak.add_argument("--seed", type=int, default=0,
                      help="seed for member RNGs and the paired sim run")
    soak.add_argument("--host", default="127.0.0.1",
                      help="interface members bind to (default: 127.0.0.1)")
    soak.add_argument("--stagger", type=float, default=0.1,
                      help="delay between member spawns, seconds "
                           "(default: 0.1)")
    soak.add_argument("--converge-timeout", type=float, default=60.0,
                      help="seconds to wait for full membership before "
                           "aborting (default: 60)")
    soak.add_argument("--no-sim-compare", action="store_true",
                      help="skip the paired simulator run")
    soak.add_argument("--gate", action="store_true",
                      help="exit 1 unless the run has zero healthy-phase "
                           "false positives and every kill was detected")
    soak.add_argument("--json", action="store_true",
                      help="emit the report JSON on stdout")

    watch = sub.add_parser(
        "watch", help="poll a live node's admin endpoint (repro.ops)"
    )
    watch.add_argument("address", help="host:port of the node's admin API")
    watch.add_argument("--interval", type=float, default=2.0,
                       help="seconds between polls (default: 2)")
    watch.add_argument("--once", action="store_true",
                       help="poll a single time and exit")
    watch.add_argument("--timeout", type=float, default=3.0,
                       help="per-request timeout, seconds (default: 3)")
    watch.add_argument("--json", action="store_true",
                       help="print the raw /info JSON instead of a summary")
    return parser


def _cmd_threshold(args: argparse.Namespace) -> int:
    result = run_threshold(
        ThresholdParams(
            configuration=args.config,
            n_members=args.members,
            concurrent=args.concurrent,
            duration=args.duration,
            alpha=args.alpha,
            beta=args.beta,
            seed=args.seed,
        )
    )
    if args.json:
        return _emit_json("threshold-result", result.as_dict())
    print(f"configuration : {args.config} (alpha={args.alpha}, beta={args.beta})")
    print(f"anomalous     : {', '.join(sorted(result.anomalous))}")
    first = percentile_summary(result.first_detection)
    full = percentile_summary(result.full_dissemination)

    def fmt(stats):
        return " / ".join(
            f"{p:g}%={v:.2f}s" if v is not None else f"{p:g}%=n/a"
            for p, v in stats.items()
        )

    print(f"first detect  : {fmt(first)}")
    print(f"full dissem   : {fmt(full)}")
    print(f"undetected    : {len(result.latencies.undetected)}")
    print(f"recovered     : {result.recovered}"
          + (f" after {result.recovery_time:.1f}s" if result.recovery_time else ""))
    return 0


def _cmd_interval(args: argparse.Namespace) -> int:
    result = run_interval(
        IntervalParams(
            configuration=args.config,
            n_members=args.members,
            concurrent=args.concurrent,
            duration=args.duration,
            interval=args.interval,
            alpha=args.alpha,
            beta=args.beta,
            min_test_time=args.test_time,
            seed=args.seed,
        )
    )
    if args.json:
        return _emit_json("interval-result", result.as_dict())
    print(f"configuration : {args.config} (alpha={args.alpha}, beta={args.beta})")
    print(f"test time     : {result.test_time:.1f}s")
    print(f"FP events     : {result.fp_events}")
    print(f"FP- events    : {result.fp_healthy_events}")
    print(f"messages sent : {result.msgs_sent}")
    print(f"bytes sent    : {result.bytes_sent}")
    return 0


def _cmd_stress(args: argparse.Namespace) -> int:
    if args.shards > 1 and not args.zones:
        print("--shards requires --zones", file=sys.stderr)
        return 2
    result = run_stress(
        StressParams(
            configuration=args.config,
            n_members=args.members if args.members != 128 else 100,
            n_stressed=args.stressed,
            stress_duration=args.stress_time,
            alpha=args.alpha,
            beta=args.beta,
            seed=args.seed,
            zones=args.zones,
            shards=args.shards,
        )
    )
    if args.json:
        return _emit_json("stress-result", result.as_dict())
    print(f"configuration : {args.config}")
    if args.zones:
        print(f"zones         : {args.zones} ({args.shards} shard(s))")
    print(f"stressed      : {', '.join(sorted(result.stressed))}")
    print(f"total FP      : {result.total_false_positives}")
    print(f"FP at healthy : {result.false_positives_at_healthy}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    results = []
    for configuration in CONFIGURATION_NAMES:
        results.append(
            run_interval(
                IntervalParams(
                    configuration=configuration,
                    n_members=args.members,
                    concurrent=args.concurrent,
                    duration=args.duration,
                    interval=args.interval,
                    alpha=args.alpha,
                    beta=args.beta,
                    min_test_time=args.test_time,
                    seed=args.seed,
                )
            )
        )
    if args.json:
        return _emit_json(
            "compare-result",
            {"results": [result.as_dict() for result in results]},
        )
    print(
        f"Interval experiment: n={args.members} C={args.concurrent} "
        f"D={args.duration}s I={args.interval}s T>={args.test_time}s "
        f"(alpha={args.alpha}, beta={args.beta})"
    )
    print(f"{'configuration':15s} {'FP':>7s} {'FP-':>6s} {'msgs':>9s} {'MiB':>8s}")
    for configuration, result in zip(CONFIGURATION_NAMES, results):
        print(
            f"{configuration:15s} {result.fp_events:7d} "
            f"{result.fp_healthy_events:6d} {result.msgs_sent:9d} "
            f"{result.bytes_sent / 2**20:8.2f}"
        )
    return 0


def _cmd_schedulers(args: argparse.Namespace) -> int:
    result = run_scheduler_comparison(
        SchedulerComparisonParams(
            configuration=args.config,
            n_members=args.members,
            concurrent=args.concurrent,
            duration=args.duration,
            fp_test_time=args.test_time,
            alpha=args.alpha,
            beta=args.beta,
            reps=args.reps,
            seed=args.seed,
            schedulers=tuple(args.strategies),
        )
    )
    if args.json:
        return _emit_json("scheduler-comparison", result.as_dict())
    print(
        f"Strategy comparison: {args.config} n={args.members} "
        f"C={args.concurrent} D={args.duration}s reps={args.reps} "
        f"(alpha={args.alpha}, beta={args.beta})"
    )
    print(
        f"{'strategy':12s} {'detect p50':>11s} {'p99':>8s} {'undet':>6s} "
        f"{'FP':>5s} {'FP-':>5s} {'msgs':>9s}"
    )
    for outcome in result.outcomes:
        summary = outcome.detection_summary

        def fmt(value):
            return f"{value:.2f}s" if value is not None else "n/a"

        print(
            f"{outcome.strategy:12s} {fmt(summary.get(50.0)):>11s} "
            f"{fmt(summary.get(99.0)):>8s} {outcome.undetected:6d} "
            f"{outcome.fp_events:5d} {outcome.fp_healthy_events:5d} "
            f"{outcome.msgs_sent:9d}"
        )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    import os

    from repro.check.runner import (
        replay_file,
        run_partitioned_sweep,
        write_artifact,
    )
    from repro.ops.registry import MetricsRegistry

    if args.replay:
        result = replay_file(args.replay, stride=args.stride)
        if args.json:
            _emit_json("check-replay", result.as_dict())
        else:
            verdict = "clean" if result.ok else "VIOLATED"
            print(
                f"replay {args.replay}: {verdict} "
                f"({result.events} events, {result.sim_time:.0f}s simulated)"
            )
            for violation in result.violations:
                print(f"  {violation}")
        return 0 if result.ok else 1

    if args.shards > 1 and not args.zones:
        print("--shards requires --zones", file=sys.stderr)
        return 2

    params = None
    if args.scheduler or args.zones:
        from repro.check.scenarios import GeneratorParams

        overrides = {}
        if args.scheduler:
            overrides["schedulers"] = (args.scheduler,)
        if args.zones:
            overrides["zone_counts"] = (args.zones,)
        params = GeneratorParams(**overrides)

    if args.zones and args.shards > 1:
        # Pre-sweep self-check: the sharded driver must replay the
        # 1-process trace bit-for-bit before we trust it with anything.
        from repro.zones.sharded import run_zoned

        single = run_zoned(
            16 * args.zones, seed=args.start_seed,
            zone_count=args.zones, duration=30.0, shards=1,
        )
        sharded = run_zoned(
            16 * args.zones, seed=args.start_seed,
            zone_count=args.zones, duration=30.0, shards=args.shards,
        )
        if single.digest != sharded.digest:
            print(
                "shard equivalence FAILED: 1-process digest "
                f"{single.digest[:16]}... != {sharded.shards}-shard digest "
                f"{sharded.digest[:16]}...",
                file=sys.stderr,
            )
            return 1
        if not args.json:
            print(
                f"shard equivalence ok ({sharded.shards} shards, "
                f"digest {single.digest[:16]}...)"
            )

    registry = MetricsRegistry()
    progress = None
    if not args.json:
        def progress(seed: int, result) -> None:
            mark = "." if result.ok else "X"
            print(mark, end="", flush=True)

    sweep = run_partitioned_sweep(
        args.seeds,
        args.partitions,
        params=params,
        start_seed=args.start_seed,
        stride=args.stride,
        shrink=not args.no_shrink,
        max_shrink_runs=args.max_shrink,
        max_failures=args.max_failures,
        registry=registry,
        on_seed=progress,
        jobs=args.jobs,
    )
    artifacts = []
    if sweep.failures:
        os.makedirs(args.artifact_dir, exist_ok=True)
    for failure in sweep.failures:
        path = os.path.join(
            args.artifact_dir, f"repro-check-seed{failure.seed}.json"
        )
        write_artifact(path, failure.artifact)
        artifacts.append(path)
    # Exit status is the conjunction across *all* partitions — a failure
    # in any partition must fail the command, not just one in the last.
    if args.json:
        payload = sweep.as_dict()
        payload["artifacts"] = artifacts
        _emit_json("check-sweep", payload)
        return 0 if sweep.ok else 1
    print()
    for index, partition in enumerate(sweep.partitions):
        prefix = f"partition {index}: " if args.partitions > 1 else ""
        print(
            f"{prefix}{partition.seeds_run} seeds, "
            f"{partition.seeds_failed} failed, "
            f"{partition.violations} violations, {partition.events} events, "
            f"{partition.wall_time:.1f}s"
        )
    for failure, path in zip(sweep.failures, artifacts):
        spec = (
            failure.shrunk.minimal
            if failure.shrunk is not None
            else failure.result.spec
        )
        print(
            f"seed {failure.seed}: {len(failure.result.violations)} "
            f"violation(s), shrunk to {len(spec.faults)} fault(s) "
            f"/ {spec.n_members} members -> {path}"
        )
        for violation in (
            failure.shrunk.violations
            if failure.shrunk is not None
            else failure.result.violations
        )[:3]:
            print(f"  {violation}")
    return 0 if sweep.ok else 1


def _fetch_json(url: str, timeout: float) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _render_watch(info: dict) -> str:
    lhm = info["lhm"]
    probe = info["probe"]
    members = info["members"]
    by_state = members.get("by_state", {})
    states = ", ".join(f"{state}={count}" for state, count in sorted(by_state.items()))
    health = "healthy" if lhm["healthy"] else (
        "saturated" if lhm["saturated"] else "degrading"
    )
    return (
        f"{info['name']} @ {info['address']}  inc={info['incarnation']}  "
        f"lhm={lhm['score']}/{lhm['max']} ({health})  "
        f"probe={probe['interval']:.2f}s/{probe['timeout']:.2f}s  "
        f"members: {states}  suspicions={info['suspicions']}"
    )


def _cmd_watch(args: argparse.Namespace) -> int:
    base = f"http://{args.address}"
    while True:
        try:
            info = _fetch_json(base + "/info", args.timeout)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"watch: cannot reach {base}/info: {exc}", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(info, indent=2, sort_keys=True))
        else:
            print(_render_watch(info))
        if args.once:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return 0


def _cmd_packetbench(args: argparse.Namespace) -> int:
    from repro.harness.packetbench import run_packet_bench

    try:
        result = run_packet_bench(
            backend=args.backend,
            duration=args.duration,
            payload_size=args.payload_size,
            batch_size=args.batch_size,
            window=args.window,
            reps=args.reps,
            isolate=not args.in_process,
        )
    except RuntimeError as exc:  # e.g. uvloop not installed
        print(f"packetbench: {exc}", file=sys.stderr)
        return 1
    if args.json:
        return _emit_json("packetbench", result)
    print(
        f"backend={result['backend']}  "
        f"msgs/s={result['msgs_per_sec']:,.0f}  "
        f"round_trips={result['round_trips']}  loss={result['loss']}  "
        f"elapsed={result['elapsed']:.2f}s"
    )
    print(
        f"  syscalls: send={result['client_send_syscalls']} "
        f"(avg batch {result['avg_send_batch']:.1f})  "
        f"recv={result['client_recv_syscalls']} "
        f"(avg batch {result['avg_recv_batch']:.1f})  "
        f"mmsg={'yes' if result['uses_mmsg'] else 'no'}"
    )
    return 0


def _cmd_member(args: argparse.Namespace) -> int:
    from repro.soak.member_main import main as member_main

    return member_main(args.member_args)


def _cmd_soak(args: argparse.Namespace) -> int:
    from repro.soak.runner import SoakParams, run_soak
    from repro.soak.schedule import ChaosSchedule

    try:
        schedule = ChaosSchedule.load(args.schedule)
    except (OSError, ValueError, KeyError) as exc:
        print(f"soak: cannot load schedule {args.schedule}: {exc}",
              file=sys.stderr)
        return 2
    try:
        params = SoakParams(
            members=args.members,
            schedule=schedule,
            duration=args.duration,
            run_dir=args.report,
            host=args.host,
            probe_interval=args.probe_interval,
            alpha=args.alpha,
            beta=args.beta,
            seed=args.seed,
            stagger=args.stagger,
            converge_timeout=args.converge_timeout,
            sim_compare=not args.no_sim_compare,
        )
    except ValueError as exc:
        print(f"soak: {exc}", file=sys.stderr)
        return 2

    def log(message: str) -> None:
        if not args.json:
            print(f"soak: {message}", flush=True)

    try:
        result = run_soak(params, log=log)
    except RuntimeError as exc:
        print(f"soak: {exc}", file=sys.stderr)
        return 1
    analysis = result.analysis
    if args.json:
        with open(result.report_json, "r", encoding="utf-8") as handle:
            print(handle.read(), end="")
    else:
        gate = analysis.gate()
        def fmt(value):
            return f"{value:.2f}s" if value is not None else "n/a"
        print(f"soak: {params.members} members, "
              f"{len(analysis.kills)} kill(s), "
              f"convergence {fmt(analysis.convergence_time)}")
        print(f"soak: first-detection median "
              f"{fmt(analysis.detection_median())}, dissemination median "
              f"{fmt(analysis.dissemination_median())}")
        print(f"soak: false positives {analysis.fp_total} "
              f"({analysis.fp_healthy} healthy-phase), undetected kills "
              f"{len(gate['undetected_kills'])}")
        print(f"soak: report at {result.report_md}")
        print(f"soak: gate {'PASS' if gate['ok'] else 'FAIL'}")
    if args.gate and not result.gate_ok:
        return 1
    return 0


_COMMANDS = {
    "threshold": _cmd_threshold,
    "interval": _cmd_interval,
    "stress": _cmd_stress,
    "compare": _cmd_compare,
    "schedulers": _cmd_schedulers,
    "check": _cmd_check,
    "packetbench": _cmd_packetbench,
    "member": _cmd_member,
    "soak": _cmd_soak,
    "watch": _cmd_watch,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["member"]:
        # Dispatched before argparse: REMAINDER cannot capture leading
        # optionals (``repro member --name ...``), and the member process
        # owns its full flag set (repro.soak.member_main).
        from repro.soak.member_main import main as member_main

        return member_main(argv[1:])
    args = _build_parser().parse_args(argv)
    command = _COMMANDS[args.command]
    profile_out = getattr(args, "profile", None)
    if not profile_out:
        return command(args)
    # Profile-driven optimization workflow (docs/PERFORMANCE.md): run the
    # command under cProfile, persist the raw pstats file for snakeviz /
    # pstats browsing, and print a hot-spot summary to stderr so the
    # command's own stdout (including --json) stays parseable.
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return command(args)
    finally:
        profiler.disable()
        profiler.dump_stats(profile_out)
        print(f"profile written to {profile_out}", file=sys.stderr)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("tottime").print_stats(15)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
