"""Local health for heartbeat detectors — the paper's future-work idea.

Section VII: *"A separate line of work could investigate applying the
local health approach to other classes of failure detector."* Section VI
observes that in a setting with multiple co-located heartbeat detectors,
Lifeguard's heuristics could be evaluated.

The transplanted heuristic: heartbeat arrivals from *different* peers are
independent, so when a large fraction of them look late at the same
moment, the likeliest cause is local slowness (the monitor was starved
and is only now processing its backlog), not a mass simultaneous failure.
While that condition holds, the detector withholds DOWN verdicts.
"""

from __future__ import annotations

from typing import List, Tuple


class LocalAwareness:
    """Quorum-of-late-peers heuristic for a heartbeat monitor."""

    __slots__ = ("enabled", "quorum_fraction", "holds", "history")

    def __init__(self, enabled: bool, quorum_fraction: float = 0.5) -> None:
        if not 0.0 < quorum_fraction <= 1.0:
            raise ValueError("quorum_fraction must be in (0, 1]")
        self.enabled = enabled
        self.quorum_fraction = quorum_fraction
        #: How many times verdicts were withheld (telemetry).
        self.holds = 0
        #: (time, late, total) samples where the hold triggered.
        self.history: List[Tuple[float, int, int]] = []

    def hold_fire(self, late_count: int, total_peers: int) -> bool:
        """Whether DOWN verdicts should be withheld right now."""
        if not self.enabled or total_peers == 0:
            return False
        if late_count / total_peers >= self.quorum_fraction and late_count >= 2:
            self.holds += 1
            return True
        return False

    def observe(self, late_count: int, total_peers: int, now: float) -> None:
        """Record a sample for post-hoc analysis (bounded)."""
        if not self.enabled or total_peers == 0:
            return
        if late_count / total_peers >= self.quorum_fraction and late_count >= 2:
            if len(self.history) < 10_000:
                self.history.append((now, late_count, total_peers))
