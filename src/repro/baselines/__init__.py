"""Baseline failure detectors from the paper's related work (Section VI).

The paper positions Lifeguard against the adaptive heartbeat-detector
literature: Chen et al.'s expected-arrival estimator [17, 18] and the
phi-accrual detector of Hayashibara et al. [20]. Both adapt their
timeouts to *network* behaviour, but neither considers that the **local**
detector may be the slow party — so a slow monitor still accuses healthy
peers. This package implements both detectors on the same simulation
substrate, plus the paper's Section VII future-work suggestion: a
local-health wrapper that applies Lifeguard's insight to heartbeat
detection.

* :class:`~repro.baselines.estimators.ChenEstimator` — expected next
  arrival (windowed mean) plus a fixed safety margin ``alpha``.
* :class:`~repro.baselines.estimators.PhiAccrualEstimator` — suspicion as
  a continuous scale: ``phi = -log10(P(heartbeat still coming))`` under a
  normal model of inter-arrival times.
* :class:`~repro.baselines.heartbeat.HeartbeatNode` — a sans-IO
  heartbeat-broadcasting member hosting one estimator per peer.
* :class:`~repro.baselines.local_aware.LocalAwareness` — scales a
  heartbeat detector's thresholds when many peers look late *at once*,
  which is evidence the local member (not the peers) is slow.
"""

from repro.baselines.estimators import ChenEstimator, PhiAccrualEstimator
from repro.baselines.heartbeat import HeartbeatConfig, HeartbeatNode
from repro.baselines.local_aware import LocalAwareness

__all__ = [
    "ChenEstimator",
    "HeartbeatConfig",
    "HeartbeatNode",
    "LocalAwareness",
    "PhiAccrualEstimator",
]
