"""A heartbeat-based group failure detector (the related-work baseline).

Each member broadcasts a heartbeat every ``heartbeat_interval`` to every
peer; each member independently monitors every peer with an arrival
estimator (Chen or phi-accrual). This is the all-to-all generalization of
the 1-to-1 monitoring relationship assumed in the adaptive-failure-
detector literature the paper discusses in Section VI.

The node is sans-IO like :class:`~repro.swim.node.SwimNode` and runs on
the same simulator, event-log and anomaly machinery, so heartbeat
detectors and SWIM/Lifeguard can be compared under identical anomalies.

Wire format: heartbeats are encoded as SWIM ``Alive`` messages (member,
incarnation = sequence number), so the existing codec and telemetry work
unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.metrics.telemetry import Telemetry
from repro.runtime import Clock, Scheduler, TimerHandle, Transport
from repro.swim import codec
from repro.swim.events import EventKind, EventListener, MemberEvent
from repro.swim.messages import Alive

from repro.baselines.estimators import ChenEstimator, PhiAccrualEstimator
from repro.baselines.local_aware import LocalAwareness

#: Factory signature for per-peer estimators.
EstimatorFactory = Callable[[], object]


@dataclass(frozen=True)
class HeartbeatConfig:
    """Parameters of the heartbeat detector."""

    #: Interval between heartbeat broadcasts (seconds).
    heartbeat_interval: float = 1.0
    #: How often each member re-evaluates its peers (seconds).
    check_interval: float = 0.2
    #: Which estimator to use: "chen" or "phi".
    estimator: str = "chen"
    #: Chen's safety margin alpha (seconds).
    chen_alpha: float = 0.5
    #: Phi-accrual suspicion threshold.
    phi_threshold: float = 8.0
    #: Estimator window size (heartbeats).
    window_size: int = 100
    #: Enable the local-health wrapper (the paper's Section VII idea):
    #: when a large fraction of peers look late simultaneously, treat it
    #: as evidence of *local* slowness and hold fire.
    local_awareness: bool = False
    #: Fraction of peers that must look late at once to trigger the
    #: local-awareness hold.
    local_awareness_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0 or self.check_interval <= 0:
            raise ValueError("intervals must be positive")
        if self.estimator not in ("chen", "phi"):
            raise ValueError("estimator must be 'chen' or 'phi'")
        if not 0.0 < self.local_awareness_fraction <= 1.0:
            raise ValueError("local_awareness_fraction must be in (0, 1]")


class HeartbeatNode:
    """One member of a heartbeat-monitored group."""

    def __init__(
        self,
        name: str,
        peers: List[str],
        config: HeartbeatConfig,
        clock: Clock,
        scheduler: Scheduler,
        transport: Transport,
        rng: Optional[random.Random] = None,
        listener: Optional[EventListener] = None,
    ) -> None:
        self.name = name
        self.config = config
        self._clock = clock
        self._scheduler = scheduler
        self._transport = transport
        self._rng = rng if rng is not None else random.Random()
        self._listener = listener
        self.telemetry = Telemetry()

        self._peers = [p for p in peers if p != name]
        self._estimators: Dict[str, object] = {
            peer: self._make_estimator() for peer in self._peers
        }
        self._down: Dict[str, bool] = {peer: False for peer in self._peers}
        self.awareness = LocalAwareness(
            enabled=config.local_awareness,
            quorum_fraction=config.local_awareness_fraction,
        )

        self._seq = 0
        self._running = False
        self._beat_timer: Optional[TimerHandle] = None
        self._check_timer: Optional[TimerHandle] = None

    def _make_estimator(self):
        if self.config.estimator == "chen":
            return ChenEstimator(
                alpha=self.config.chen_alpha,
                expected_interval=self.config.heartbeat_interval,
                window_size=self.config.window_size,
            )
        return PhiAccrualEstimator(
            threshold=self.config.phi_threshold,
            expected_interval=self.config.heartbeat_interval,
            window_size=self.config.window_size,
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        if self._running:
            raise RuntimeError(f"node {self.name} already started")
        self._running = True
        now = self._clock()
        self._beat_timer = self._scheduler.call_at(
            now + self._rng.uniform(0, self.config.heartbeat_interval),
            self._beat_tick,
        )
        self._check_timer = self._scheduler.call_at(
            now + self._rng.uniform(0, self.config.check_interval),
            self._check_tick,
        )

    def stop(self) -> None:
        self._running = False
        for timer in (self._beat_timer, self._check_timer):
            if timer is not None:
                timer.cancel()
        self._beat_timer = self._check_timer = None

    # ------------------------------------------------------------------ #
    # Heartbeating
    # ------------------------------------------------------------------ #

    def _beat_tick(self) -> None:
        if not self._running:
            return
        now = self._clock()
        self._beat_timer = self._scheduler.call_at(
            now + self.config.heartbeat_interval, self._beat_tick
        )
        self._seq += 1
        payload = codec.encode(Alive(self._seq, self.name, self.name))
        for peer in self._peers:
            self.telemetry.record_send("heartbeat", len(payload))
            self._transport.send(peer, payload)

    def handle_packet(self, payload: bytes, from_address: str, reliable: bool = False) -> None:
        if not self._running:
            return
        self.telemetry.record_receive(len(payload))
        try:
            message = codec.decode(payload)
        except codec.CodecError:
            return
        if not isinstance(message, Alive):
            return
        estimator = self._estimators.get(message.member)
        if estimator is None:
            return
        now = self._clock()
        estimator.record(now)
        if self._down[message.member]:
            self._down[message.member] = False
            self._emit(EventKind.RESTORED, message.member, message.incarnation, now)

    # ------------------------------------------------------------------ #
    # Peer evaluation
    # ------------------------------------------------------------------ #

    def _check_tick(self) -> None:
        if not self._running:
            return
        now = self._clock()
        self._check_timer = self._scheduler.call_at(
            now + self.config.check_interval, self._check_tick
        )
        late = [
            peer
            for peer, estimator in self._estimators.items()
            if estimator.suspect(now)
        ]
        self.awareness.observe(len(late), len(self._peers), now)
        if self.awareness.hold_fire(len(late), len(self._peers)):
            # Too many peers look late at once: the likeliest explanation
            # is that *we* are slow (Lifeguard's insight transplanted to
            # heartbeat detection; paper Section VII).
            return
        for peer in late:
            if not self._down[peer]:
                self._down[peer] = True
                self._emit(EventKind.FAILED, peer, 0, now)

    def is_down(self, peer: str) -> bool:
        return self._down[peer]

    def down_peers(self) -> List[str]:
        return [peer for peer, down in self._down.items() if down]

    def _emit(self, kind: EventKind, subject: str, incarnation: int, now: float) -> None:
        if self._listener is not None:
            self._listener(MemberEvent(now, self.name, subject, kind, incarnation))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HeartbeatNode({self.name!r}, peers={len(self._peers)})"
