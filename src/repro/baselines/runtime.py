"""Simulated cluster of heartbeat-detector members.

Mirrors :class:`repro.sim.runtime.SimCluster` for the baseline
detectors, reusing the same scheduler, network fabric, anomaly controller
and event log — so baselines and SWIM/Lifeguard face identical anomalies.

Note: heartbeat members under anomalies always use io-only semantics
(their beat loop is a single periodic send; queueing those sends is
exactly what a blocked sender looks like).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.baselines.heartbeat import HeartbeatConfig, HeartbeatNode
from repro.metrics.event_log import ClusterEventLog
from repro.metrics.telemetry import Telemetry
from repro.sim.anomaly import AnomalyController
from repro.sim.network import LatencyModel, SimNetwork
from repro.sim.runtime import default_member_names
from repro.sim.scheduler import EventScheduler
from repro.transport.sim import SimTransport


class HeartbeatCluster:
    """Hosts a group of :class:`HeartbeatNode` members in virtual time."""

    def __init__(
        self,
        n_members: int = 0,
        config: Optional[HeartbeatConfig] = None,
        seed: int = 0,
        names: Optional[Sequence[str]] = None,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
    ) -> None:
        if config is None:
            config = HeartbeatConfig()
        if names is None:
            if n_members < 1:
                raise ValueError("need n_members >= 1 or explicit names")
            names = default_member_names(n_members)
        self.names: List[str] = list(names)
        self.config = config

        self.scheduler = EventScheduler()
        self.clock = self.scheduler.clock
        self.network = SimNetwork(
            self.scheduler,
            random.Random((seed << 1) ^ 0xBEA7),
            latency=latency,
            loss_rate=loss_rate,
        )
        self.anomalies = AnomalyController(self.scheduler, self.network)
        self.network.attach_anomalies(self.anomalies)
        self.event_log = ClusterEventLog()

        self.nodes: Dict[str, HeartbeatNode] = {}
        for index, name in enumerate(self.names):
            transport = SimTransport(name, self.network)
            node = HeartbeatNode(
                name,
                self.names,
                config,
                clock=self.clock,
                scheduler=self.scheduler,
                transport=transport,
                rng=random.Random(seed * 999_983 + index * 613 + 7),
                listener=self.event_log,
            )
            transport.bind(node.handle_packet)
            self.nodes[name] = node

    @property
    def now(self) -> float:
        return self.clock.now

    def start(self) -> None:
        for node in self.nodes.values():
            node.start()

    def run_for(self, duration: float) -> int:
        return self.scheduler.run_for(duration)

    def run_until(self, deadline: float) -> int:
        return self.scheduler.run_until(deadline)

    def stop(self) -> None:
        for node in self.nodes.values():
            if node.running:
                node.stop()

    def telemetry(self) -> Telemetry:
        return Telemetry.aggregate(node.telemetry for node in self.nodes.values())
