"""Heartbeat arrival estimators.

Both estimators consume heartbeat arrival timestamps for a single
monitored peer and answer "should this peer be suspected at time t?" —
the 1-to-1 monitoring relationship the related-work literature assumes
(paper Section VI).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional


class ArrivalWindow:
    """Sliding window of heartbeat inter-arrival intervals."""

    __slots__ = ("_intervals", "_last_arrival", "_sum", "_sum_sq")

    def __init__(self, window_size: int = 100) -> None:
        if window_size < 2:
            raise ValueError("window_size must be >= 2")
        self._intervals: Deque[float] = deque(maxlen=window_size)
        self._last_arrival: Optional[float] = None
        self._sum = 0.0
        self._sum_sq = 0.0

    @property
    def last_arrival(self) -> Optional[float]:
        return self._last_arrival

    def __len__(self) -> int:
        return len(self._intervals)

    def record(self, now: float) -> None:
        """Record a heartbeat arrival at time ``now``."""
        if self._last_arrival is not None:
            interval = now - self._last_arrival
            if interval < 0:
                raise ValueError("arrivals must be monotonically ordered")
            if len(self._intervals) == self._intervals.maxlen:
                dropped = self._intervals[0]
                self._sum -= dropped
                self._sum_sq -= dropped * dropped
            self._intervals.append(interval)
            self._sum += interval
            self._sum_sq += interval * interval
        self._last_arrival = now

    def mean(self) -> Optional[float]:
        if not self._intervals:
            return None
        return self._sum / len(self._intervals)

    def stddev(self) -> Optional[float]:
        n = len(self._intervals)
        if n < 2:
            return None
        mean = self._sum / n
        variance = max(0.0, self._sum_sq / n - mean * mean)
        return math.sqrt(variance)


class ChenEstimator:
    """Chen, Toueg & Aguilera's adaptive heartbeat estimator [DSN 2000].

    The expected arrival time of the next heartbeat is estimated as the
    windowed mean inter-arrival added to the last arrival; the peer is
    suspected once ``now`` exceeds that estimate plus a fixed safety
    margin ``alpha``. Adapting the estimate to observed delays reduces
    false positives from network jitter — but a slow *monitor* processes
    arrivals late, inflating apparent gaps only after the damage is done.
    """

    __slots__ = ("window", "alpha", "_fallback_interval")

    def __init__(
        self,
        alpha: float = 0.5,
        expected_interval: float = 1.0,
        window_size: int = 100,
    ) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.window = ArrivalWindow(window_size)
        self.alpha = alpha
        self._fallback_interval = expected_interval

    def record(self, now: float) -> None:
        self.window.record(now)

    def expected_arrival(self) -> Optional[float]:
        """Estimated arrival time of the *next* heartbeat."""
        last = self.window.last_arrival
        if last is None:
            return None
        mean = self.window.mean()
        interval = mean if mean is not None else self._fallback_interval
        return last + interval

    def deadline(self) -> Optional[float]:
        """Time after which the peer is suspected (EA + alpha)."""
        expected = self.expected_arrival()
        if expected is None:
            return None
        return expected + self.alpha

    def suspect(self, now: float) -> bool:
        deadline = self.deadline()
        return deadline is not None and now > deadline


class PhiAccrualEstimator:
    """Hayashibara et al.'s phi-accrual failure detector [SRDS 2004].

    Instead of a boolean verdict, the detector outputs a continuous
    suspicion value::

        phi(t) = -log10( P(heartbeat arrives after t) )

    under a normal model of inter-arrival times; the application picks a
    threshold (8 is the classic default — a one-in-10^8 chance that the
    peer is actually alive).
    """

    __slots__ = ("window", "threshold", "min_stddev", "_fallback_interval")

    def __init__(
        self,
        threshold: float = 8.0,
        expected_interval: float = 1.0,
        window_size: int = 100,
        min_stddev: float = 0.05,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.window = ArrivalWindow(window_size)
        self.threshold = threshold
        self.min_stddev = min_stddev
        self._fallback_interval = expected_interval

    def record(self, now: float) -> None:
        self.window.record(now)

    def phi(self, now: float) -> float:
        """Current suspicion level (0 when a heartbeat just arrived)."""
        last = self.window.last_arrival
        if last is None:
            return 0.0
        elapsed = max(0.0, now - last)
        mean = self.window.mean()
        if mean is None:
            mean = self._fallback_interval
        stddev = self.window.stddev()
        if stddev is None or stddev < self.min_stddev:
            stddev = self.min_stddev
        # P(X > elapsed) for X ~ N(mean, stddev), via the complementary
        # error function; phi = -log10 of that survival probability.
        z = (elapsed - mean) / (stddev * math.sqrt(2.0))
        survival = 0.5 * math.erfc(z)
        if survival <= 0.0:
            return float("inf")
        return -math.log10(survival)

    def suspect(self, now: float) -> bool:
        return self.phi(now) >= self.threshold
