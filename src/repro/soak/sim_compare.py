"""Replays a chaos schedule on the deterministic simulator.

The soak report pairs every real-cluster run with a simulator run of the
*same* schedule at the same protocol tuning, so a surprising wall-clock
number can immediately be triaged: if the simulator agrees, the
behaviour is protocol-inherent; if it disagrees, the delta came from
real-world physics (scheduling jitter, socket buffers, slow host).

Phase mapping onto the virtual fabric:

* ``kill``      -> stop the node and unregister its transport endpoint
  (packets to it vanish; a crash, not a leave);
* ``pause``     -> an :class:`~repro.sim.anomaly.AnomalyController`
  block window (the paper's unresponsive-member shape);
* ``loss``      -> the global fabric loss rate for cluster-wide phases,
  per-link loss for targeted ones (UDP only — matching the real
  transport, where TCP retransmits through loss);
* ``partition`` -> a fabric partition of the target group vs the rest,
  healed at the window's end.

The cluster bootstraps pre-seeded (the converged state the real run is
in when its chaos epoch is chosen) and runs a short warm-up before the
virtual epoch. Results use the same per-kill metrics as
:func:`repro.soak.report.analyze`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.config import SwimConfig
from repro.soak.schedule import ChaosSchedule

#: Virtual seconds of pre-epoch warm-up (lets initial probes settle).
_WARMUP = 2.0


def _median(values: Sequence[float]) -> Optional[float]:
    clean = sorted(v for v in values if v is not None)
    if not clean:
        return None
    mid = len(clean) // 2
    if len(clean) % 2:
        return clean[mid]
    return (clean[mid - 1] + clean[mid]) / 2.0


def run_sim_comparison(
    schedule: ChaosSchedule,
    n_members: int,
    probe_interval: float = 0.5,
    alpha: float = 5.0,
    beta: float = 6.0,
    seed: int = 0,
    duration: Optional[float] = None,
) -> dict:
    """Run ``schedule`` on a fresh :class:`~repro.sim.runtime.SimCluster`
    and return the comparison metrics as a JSON-safe dict."""
    from repro.sim.runtime import SimCluster

    config = SwimConfig.lifeguard(
        alpha=alpha,
        beta=beta,
        probe_interval=probe_interval,
        probe_timeout=min(0.5, probe_interval / 2.0),
    )
    cluster = SimCluster(n_members, config=config, seed=seed)
    cluster.start()
    cluster.run_for(_WARMUP)
    epoch = cluster.now
    names = cluster.names

    killed: List[str] = [names[i] for i in schedule.killed_indices()]

    def kill(name: str) -> None:
        node = cluster.nodes[name]
        if node.running:
            node.stop()
        cluster.network.unregister(name)

    for phase in schedule.phases:
        start = epoch + phase.start
        end = epoch + phase.end
        if phase.kind == "kill":
            for target in phase.targets:
                cluster.scheduler.call_at(
                    start, lambda name=names[target]: kill(name)
                )
        elif phase.kind == "pause":
            for target in phase.targets:
                cluster.anomalies.block_window(names[target], start, end)
        elif phase.kind == "loss":
            if phase.targets:
                links = [
                    (names[t], other)
                    for t in phase.targets
                    for other in names
                    if other != names[t]
                ]

                def set_links(rate: float, links=links) -> None:
                    for src, dst in links:
                        cluster.network.set_link_loss(src, dst, rate)
                        cluster.network.set_link_loss(dst, src, rate)

                cluster.scheduler.call_at(
                    start, lambda rate=phase.rate, f=set_links: f(rate)
                )
                cluster.scheduler.call_at(end, lambda f=set_links: f(0.0))
            else:
                cluster.scheduler.call_at(
                    start,
                    lambda rate=phase.rate: setattr(
                        cluster.network, "loss_rate", rate
                    ),
                )
                cluster.scheduler.call_at(
                    end, lambda: setattr(cluster.network, "loss_rate", 0.0)
                )
        elif phase.kind == "partition":
            inside = [names[t] for t in phase.targets]
            outside = [name for name in names if name not in inside]
            cluster.scheduler.call_at(
                start,
                lambda a=inside, b=outside: cluster.network.partition(a, b),
            )
            cluster.scheduler.call_at(
                end, lambda: cluster.network.heal_partition()
            )

    run_for = duration if duration is not None else schedule.end + 30.0
    cluster.run_until(epoch + run_for)
    cluster.stop()

    survivors = [name for name in names if name not in killed]
    kill_time = {}
    for phase in schedule.of_kind("kill"):
        for target in phase.targets:
            kill_time.setdefault(names[target], epoch + phase.start)

    kills = []
    undetected = []
    log = cluster.event_log
    for victim, when in sorted(kill_time.items(), key=lambda kv: kv[1]):
        first = log.first_failure_time(victim, since=when, observers=survivors)
        dissemination = log.full_dissemination_time(
            victim, survivors, since=when
        )
        observers = log.observers_declaring_failed(victim, since=when)
        detected = dissemination is not None
        if not detected:
            undetected.append(victim)
        kills.append(
            {
                "victim": victim,
                "kill_t": when - epoch,
                "first_detection": first - when if first is not None else None,
                "dissemination": (
                    dissemination - when if dissemination is not None else None
                ),
                "detected_by": len(observers & set(survivors)),
                "survivors": len(survivors),
                "detected": detected,
            }
        )

    false_positives = sum(
        1
        for event in log.failure_events(since=epoch)
        if event.subject not in killed
        or event.time < kill_time.get(event.subject, float("inf"))
    )
    return {
        "members": n_members,
        "seed": seed,
        "virtual_duration": run_for,
        "kills": kills,
        "undetected": undetected,
        "detection_median": _median([k["first_detection"] for k in kills]),
        "dissemination_median": _median([k["dissemination"] for k in kills]),
        "false_positives": false_positives,
        "events": len(log),
    }
