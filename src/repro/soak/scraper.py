"""Polls every member's admin API into one merged wall-clock record.

One scrape thread per member (the admin API is plain HTTP/1.1 with
``Connection: close``; at soak scales — tens to low hundreds of members
— a thread each is simpler and more robust than an async client sharing
the harness process with everything else). Each thread:

1. computes the member's **clock offset**: event timestamps from
   ``/events`` are in the member's private ``loop.time()`` domain, so
   the scraper brackets a ``GET /info`` with two wall-clock reads and
   uses ``offset = wall_midpoint - info["now"]``. Every event is then
   stamped ``wall_t = event["t"] + offset``, putting all members (and
   the chaos driver's own log) on one comparable timeline;
2. polls ``/events?since=<seq>`` with the last seen sequence number, so
   each membership event is collected exactly once;
3. periodically snapshots ``/info`` (alive/suspect counts, LHM) into a
   time series and keeps the member's latest ``/metrics`` exposition
   text for the report artifact.

A member that stops answering (killed, paused, crashed) is retried with
backoff rather than dropped: a SIGSTOP'd member answers again after
SIGCONT, and its queued events are recovered on the next successful
poll.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from repro.soak.launcher import MemberRecord

#: After this many consecutive failures the poll interval backs off
#: (killed members would otherwise burn a connect timeout per tick).
_BACKOFF_AFTER = 3
_BACKOFF_FACTOR = 5.0


def _fetch(url: str, timeout: float) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read()


class SoakScraper:
    """Background collector for a launched cluster's admin endpoints."""

    def __init__(
        self,
        members: List[MemberRecord],
        interval: float = 1.0,
        timeout: float = 2.0,
        snapshot_every: int = 2,
    ) -> None:
        self.members = members
        self.interval = interval
        self.timeout = timeout
        self.snapshot_every = max(1, snapshot_every)
        #: Merged membership events, each the ``/events`` record plus
        #: ``member`` (observer index) and ``wall_t``.
        self.events: List[dict] = []
        #: Periodic ``/info`` snapshots: ``{"wall_t", "member", "name",
        #: "alive", "by_state", "lhm", "suspicions"}``.
        self.series: List[dict] = []
        #: Latest ``/metrics`` exposition text per member name.
        self.metrics_text: Dict[str, str] = {}
        #: Wall-clock offset per member name (see module docstring).
        self.offsets: Dict[str, float] = {}
        self.scrape_errors = 0
        #: Last /events sequence number seen per member index (shared by
        #: the poll threads and the final stop() poll, so no event is
        #: ever collected twice).
        self._since: Dict[int, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("scraper already started")
        for record in self.members:
            thread = threading.Thread(
                target=self._poll_member,
                args=(record,),
                daemon=True,
                name=f"soak-scrape-{record.name}",
            )
            thread.start()
            self._threads.append(thread)

    @property
    def stopped(self) -> bool:
        return self._stop.is_set()

    def stop(self, final_poll: bool = True) -> None:
        """Stop polling; with ``final_poll`` each live member is scraped
        one last time first so late events are not lost."""
        if final_poll:
            for record in self.members:
                if record.alive:
                    self._scrape_once(record, snapshot=True)
                    # One more pass: events raised between the poll
                    # threads' last tick and this call are now drained.
                    self._scrape_once(record)
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=self.timeout + 1.0)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def merged_events(self) -> List[dict]:
        """All collected events ordered by wall time."""
        with self._lock:
            return sorted(self.events, key=lambda e: e["wall_t"])

    def wait_converged(
        self, expected_alive: int, timeout: float, poll: float = 0.5
    ) -> Optional[float]:
        """Block until every live member reports ``expected_alive`` alive
        members (its own row included). Returns the wall time of
        convergence, or ``None`` on timeout."""
        deadline = time.time() + timeout
        while time.time() < deadline:
            if self._all_see_alive(expected_alive):
                return time.time()
            time.sleep(poll)
        return None

    def _all_see_alive(self, expected: int) -> bool:
        for record in self.members:
            if not record.alive:
                return False
            try:
                raw = _fetch(record.admin_url + "/info", self.timeout)
                info = json.loads(raw)
            except (urllib.error.URLError, OSError, ValueError):
                return False
            if info["members"]["alive"] != expected:
                return False
        return True

    # ------------------------------------------------------------------ #
    # Per-member polling
    # ------------------------------------------------------------------ #

    def _poll_member(self, record: MemberRecord) -> None:
        failures = 0
        ticks = 0
        while not self._stop.is_set():
            ok = self._scrape_once(
                record, snapshot=(ticks % self.snapshot_every == 0)
            )
            ticks += 1
            failures = 0 if ok else failures + 1
            delay = self.interval
            if failures >= _BACKOFF_AFTER:
                delay *= _BACKOFF_FACTOR
            self._stop.wait(delay)

    def _scrape_once(self, record: MemberRecord, snapshot: bool = False) -> bool:
        """One poll round; returns whether the member answered."""
        base = record.admin_url
        with self._lock:
            since = self._since.get(record.index, 0)
        try:
            offset = self._ensure_offset(record)
            raw = _fetch(f"{base}/events?since={since}", self.timeout)
            batch = []
            for line in raw.decode("utf-8").splitlines():
                if not line:
                    continue
                event = json.loads(line)
                event["member"] = record.index
                event["wall_t"] = event["t"] + offset
                batch.append(event)
                since = max(since, event["seq"])
            snap = None
            if snapshot:
                info = json.loads(_fetch(base + "/info", self.timeout))
                snap = {
                    "wall_t": time.time(),
                    "member": record.index,
                    "name": record.name,
                    "alive": info["members"]["alive"],
                    "by_state": info["members"]["by_state"],
                    "lhm": info["lhm"]["score"],
                    "suspicions": info["suspicions"],
                }
                self.metrics_text[record.name] = _fetch(
                    base + "/metrics", self.timeout
                ).decode("utf-8")
        except (urllib.error.URLError, OSError, ValueError, KeyError):
            with self._lock:
                self.scrape_errors += 1
            return False
        with self._lock:
            # Re-check under the lock: a concurrent poll of the same
            # member may have landed these events already.
            known = self._since.get(record.index, 0)
            fresh = [event for event in batch if event["seq"] > known]
            self.events.extend(fresh)
            if since > known:
                self._since[record.index] = since
            if snap is not None:
                self.series.append(snap)
        return True

    def _ensure_offset(self, record: MemberRecord) -> float:
        offset = self.offsets.get(record.name)
        if offset is not None:
            return offset
        before = time.time()
        info = json.loads(_fetch(record.admin_url + "/info", self.timeout))
        after = time.time()
        offset = (before + after) / 2.0 - info["now"]
        self.offsets[record.name] = offset
        return offset
