"""Spawns and supervises N real member processes on one host.

The launcher is the harness's process layer: it forks ``repro member``
subprocesses (ephemeral UDP + admin ports, so no port planning), learns
each member's actual addresses from the single JSON *ready line* the
member prints on stdout, staggers joins through member 0, and executes
the process-level chaos verbs — SIGKILL for ``kill`` phases, SIGSTOP /
SIGCONT for ``pause`` — on behalf of the
:class:`~repro.soak.chaos.ChaosDriver`.

Orphan protection is belt-and-braces: the launcher registers atexit and
SIGTERM/SIGINT hooks that SIGKILL every still-running child, *and* every
child watches ``--parent-pid`` and exits by itself if the launcher
vanishes without running them (SIGKILL'd, OOM'd).

Fault plans are delivered as files: :meth:`SoakLauncher.write_fault_plans`
translates a :class:`~repro.soak.schedule.ChaosSchedule` into per-member
:class:`~repro.faults.FaultPlan` JSON (via
:func:`~repro.soak.schedule.member_fault_plans`, using the real bound
addresses) and writes each atomically next to the member's log; the
member's ``--watch-fault-plan`` poller arms it on the live transport.
This two-step dance exists because the chaos epoch is only chosen after
the cluster has converged, long after the processes were spawned.
"""

from __future__ import annotations

import atexit
import errno
import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.soak.schedule import ChaosSchedule, member_fault_plans


@dataclass
class MemberRecord:
    """One spawned member process and what the launcher knows about it."""

    index: int
    name: str
    process: subprocess.Popen
    log_path: str
    plan_path: str
    #: ``host:port`` of the member's UDP/TCP transport (from the ready
    #: line; ``""`` until ready).
    address: str = ""
    #: ``host:port`` of the member's admin API (ephemeral by default).
    admin_address: str = ""
    #: ``running`` -> ``paused`` -> ``running`` -> ``killed``/``exited``.
    state: str = "running"
    ready: threading.Event = field(default_factory=threading.Event)

    @property
    def admin_url(self) -> str:
        return f"http://{self.admin_address}"

    @property
    def pid(self) -> int:
        return self.process.pid

    @property
    def alive(self) -> bool:
        """Process-level liveness (a paused member is alive)."""
        return self.state in ("running", "paused") and self.process.poll() is None


class SoakLauncher:
    """Spawn, address, signal and reap a local cluster of real members.

    Parameters
    ----------
    run_dir:
        Directory for per-member logs and fault-plan files (created).
    host:
        Interface members bind to (loopback by default).
    probe_interval / alpha / beta / seed:
        Protocol tuning passed through to every member.
    stagger:
        Delay between successive spawns (seconds); joining one member at
        a time keeps the join burst realistic and the host responsive.
    ready_timeout:
        How long to wait for each member's ready line before declaring
        the spawn failed.
    """

    def __init__(
        self,
        run_dir: str,
        host: str = "127.0.0.1",
        probe_interval: float = 0.5,
        alpha: float = 5.0,
        beta: float = 6.0,
        seed: int = 0,
        stagger: float = 0.1,
        ready_timeout: float = 30.0,
        python: Optional[str] = None,
    ) -> None:
        self.run_dir = run_dir
        self.host = host
        self.probe_interval = probe_interval
        self.alpha = alpha
        self.beta = beta
        self.seed = seed
        self.stagger = stagger
        self.ready_timeout = ready_timeout
        self.python = python or sys.executable
        self.members: List[MemberRecord] = []
        self._readers: List[threading.Thread] = []
        self._cleanup_installed = False
        self._prev_handlers: Dict[int, object] = {}
        os.makedirs(run_dir, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Spawning
    # ------------------------------------------------------------------ #

    @staticmethod
    def member_name(index: int, count: int) -> str:
        """Mirrors the simulator's ``m000...`` naming so the paired sim
        run (:mod:`repro.soak.sim_compare`) shares member names."""
        width = max(3, len(str(count - 1)))
        return f"m{index:0{width}d}"

    def spawn_all(self, count: int) -> List[MemberRecord]:
        """Spawn ``count`` members; returns them once all are ready."""
        if count < 1:
            raise ValueError("need at least one member")
        if self.members:
            raise RuntimeError("launcher already spawned a cluster")
        self._install_cleanup()
        first = self._spawn(0, count, join=None)
        self._await_ready(first)
        for index in range(1, count):
            if self.stagger > 0:
                time.sleep(self.stagger)
            self._spawn(index, count, join=first.address)
        for record in self.members[1:]:
            self._await_ready(record)
        return self.members

    def _spawn(self, index: int, count: int, join: Optional[str]) -> MemberRecord:
        name = self.member_name(index, count)
        log_path = os.path.join(self.run_dir, f"{name}.log")
        plan_path = os.path.join(self.run_dir, f"{name}.plan.json")
        cmd = [
            self.python, "-m", "repro", "member",
            "--name", name,
            "--host", self.host,
            "--port", "0",
            "--admin-port", "0",
            "--probe-interval", str(self.probe_interval),
            "--alpha", str(self.alpha),
            "--beta", str(self.beta),
            "--seed", str(self.seed * 1_000_003 + index * 7919 + 17),
            "--fault-plan", plan_path,
            "--watch-fault-plan",
            "--parent-pid", str(os.getpid()),
        ]
        if join is not None:
            cmd += ["--join", join]
        log = open(log_path, "a", buffering=1, encoding="utf-8")
        try:
            process = subprocess.Popen(
                cmd,
                stdout=subprocess.PIPE,
                stderr=log,
                text=True,
                env={**os.environ, "PYTHONUNBUFFERED": "1"},
            )
        finally:
            log.close()  # the child holds its own descriptor now
        record = MemberRecord(
            index=index,
            name=name,
            process=process,
            log_path=log_path,
            plan_path=plan_path,
        )
        self.members.append(record)
        reader = threading.Thread(
            target=self._read_stdout, args=(record,), daemon=True,
            name=f"soak-stdout-{name}",
        )
        reader.start()
        self._readers.append(reader)
        return record

    def _read_stdout(self, record: MemberRecord) -> None:
        """Consume the child's stdout: first the ready line, then tee the
        rest into its log file (keeps the pipe drained forever)."""
        stream = record.process.stdout
        assert stream is not None
        with open(record.log_path, "a", buffering=1, encoding="utf-8") as log:
            for line in stream:
                if not record.ready.is_set():
                    try:
                        payload = json.loads(line)
                    except ValueError:
                        payload = None
                    if isinstance(payload, dict) and payload.get("event") == "ready":
                        record.address = payload["address"]
                        record.admin_address = payload["admin"]
                        record.ready.set()
                        continue
                log.write(line)

    def _await_ready(self, record: MemberRecord) -> None:
        if record.ready.wait(self.ready_timeout):
            return
        status = record.process.poll()
        self.terminate_all()
        raise RuntimeError(
            f"member {record.name} not ready within {self.ready_timeout}s "
            f"(exit status {status}; see {record.log_path})"
        )

    # ------------------------------------------------------------------ #
    # Registry views
    # ------------------------------------------------------------------ #

    def addresses(self) -> List[str]:
        """Transport addresses in spawn (= schedule index) order."""
        return [record.address for record in self.members]

    def record(self, index: int) -> MemberRecord:
        return self.members[index]

    def live_members(self) -> List[MemberRecord]:
        return [record for record in self.members if record.alive]

    def registry(self) -> List[dict]:
        """JSON-safe snapshot of every member (report artifact)."""
        return [
            {
                "index": record.index,
                "name": record.name,
                "pid": record.pid,
                "address": record.address,
                "admin": record.admin_address,
                "state": record.state,
            }
            for record in self.members
        ]

    # ------------------------------------------------------------------ #
    # Chaos verbs + plan delivery
    # ------------------------------------------------------------------ #

    def write_fault_plans(
        self, schedule: ChaosSchedule, epoch: float
    ) -> Dict[int, str]:
        """Write each member's fault-plan file (atomic rename so the
        member-side watcher never parses a partial write)."""
        plans = member_fault_plans(
            schedule, self.addresses(), epoch, seed=self.seed
        )
        written: Dict[int, str] = {}
        for index, plan in plans.items():
            record = self.members[index]
            tmp = record.plan_path + ".tmp"
            plan.dump(tmp)
            os.replace(tmp, record.plan_path)
            written[index] = record.plan_path
        return written

    def kill(self, index: int) -> bool:
        """SIGKILL (a crash fault, not a graceful leave)."""
        return self._signal(index, signal.SIGKILL, "killed")

    def pause(self, index: int) -> bool:
        return self._signal(index, signal.SIGSTOP, "paused")

    def resume(self, index: int) -> bool:
        return self._signal(index, signal.SIGCONT, "running")

    def _signal(self, index: int, signum: int, new_state: str) -> bool:
        record = self.members[index]
        if not record.alive:
            return False
        try:
            record.process.send_signal(signum)
        except (ProcessLookupError, OSError) as exc:
            if isinstance(exc, OSError) and exc.errno not in (errno.ESRCH,):
                raise
            record.state = "exited"
            return False
        record.state = new_state
        return True

    def reap(self) -> List[MemberRecord]:
        """Collect exit statuses of dead children; returns members whose
        state changed (crash detection for the report)."""
        changed = []
        for record in self.members:
            if record.state in ("killed", "exited"):
                record.process.poll()
                continue
            if record.process.poll() is not None:
                record.state = "exited"
                changed.append(record)
        return changed

    # ------------------------------------------------------------------ #
    # Teardown
    # ------------------------------------------------------------------ #

    def terminate_all(self, grace: float = 5.0) -> None:
        """SIGTERM every survivor, wait up to ``grace``, SIGKILL the rest."""
        for record in self.members:
            if record.state == "paused":
                # A stopped process cannot run its SIGTERM handler.
                self._signal(record.index, signal.SIGCONT, "running")
            if record.alive:
                try:
                    record.process.terminate()
                except (ProcessLookupError, OSError):
                    pass
        deadline = time.time() + grace
        for record in self.members:
            remaining = deadline - time.time()
            try:
                record.process.wait(timeout=max(0.0, remaining))
            except subprocess.TimeoutExpired:
                try:
                    record.process.kill()
                except (ProcessLookupError, OSError):
                    pass
                record.process.wait()
            if record.state not in ("killed",):
                record.state = "exited"
        self._uninstall_cleanup()

    def _emergency_cleanup(self) -> None:
        for record in self.members:
            if record.process.poll() is None:
                try:
                    record.process.send_signal(signal.SIGCONT)
                    record.process.kill()
                except (ProcessLookupError, OSError):
                    pass

    def _install_cleanup(self) -> None:
        if self._cleanup_installed:
            return
        self._cleanup_installed = True
        atexit.register(self._emergency_cleanup)
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGTERM, signal.SIGINT):
                previous = signal.getsignal(signum)
                self._prev_handlers[signum] = previous

                def handler(signo, frame, _previous=previous):
                    self._emergency_cleanup()
                    signal.signal(signo, _previous)  # type: ignore[arg-type]
                    os.kill(os.getpid(), signo)

                signal.signal(signum, handler)

    def _uninstall_cleanup(self) -> None:
        if not self._cleanup_installed:
            return
        self._cleanup_installed = False
        atexit.unregister(self._emergency_cleanup)
        if threading.current_thread() is threading.main_thread():
            for signum, previous in self._prev_handlers.items():
                signal.signal(signum, previous)  # type: ignore[arg-type]
        self._prev_handlers.clear()

    # Context-manager sugar: ``with SoakLauncher(...) as launcher:``
    def __enter__(self) -> "SoakLauncher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.terminate_all()
