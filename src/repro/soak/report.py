"""Distils a soak run's merged event record into a verdict.

The analysis mirrors the paper's evaluation metrics, but measured on a
*real* cluster in wall time:

* **detection latency** per killed member — first FAILED event about the
  victim by any survivor after the kill, and full dissemination (last
  survivor's first FAILED event), both relative to the kill instant;
* **false positives** — FAILED events about members that were alive at
  the time. Those inside a chaos window touching the subject (pause,
  partition, loss, plus a grace tail for in-flight suspicions) are
  *excused*: expected detector behaviour under injected faults. The rest
  are **healthy-phase false positives**, the number the paper drives to
  zero and the one the CI gate enforces;
* **false negatives** — killed members some survivor never declared
  failed;
* **convergence time** — launch to every member seeing the full group.

:func:`analyze` produces a :class:`SoakAnalysis`; :func:`render_markdown`
formats it (with the paired simulator run, when present) into the
human-readable half of the report artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.soak.schedule import ChaosSchedule

#: Median helper tolerant of empty/None-bearing samples.
def _median(values: Sequence[float]) -> Optional[float]:
    clean = sorted(v for v in values if v is not None)
    if not clean:
        return None
    mid = len(clean) // 2
    if len(clean) % 2:
        return clean[mid]
    return (clean[mid - 1] + clean[mid]) / 2.0


@dataclass
class SoakAnalysis:
    """The structured soak verdict (JSON half of the report artifact)."""

    members: int
    epoch: float
    duration: float
    convergence_time: Optional[float]
    #: Per killed member: victim, kill_t, first_detection,
    #: dissemination, detected_by, survivors, detected.
    kills: List[dict] = field(default_factory=list)
    #: Every FAILED event about a then-alive member.
    false_positives: List[dict] = field(default_factory=list)
    fp_total: int = 0
    fp_excused: int = 0
    fp_healthy: int = 0
    restored_events: int = 0
    events_total: int = 0
    phases: List[dict] = field(default_factory=list)

    @property
    def undetected(self) -> List[str]:
        return [k["victim"] for k in self.kills if not k["detected"]]

    def detection_median(self) -> Optional[float]:
        return _median([k["first_detection"] for k in self.kills])

    def dissemination_median(self) -> Optional[float]:
        return _median([k["dissemination"] for k in self.kills])

    def gate(self) -> dict:
        """The CI acceptance verdict: no healthy-phase false positives,
        every killed member detected by every survivor."""
        return {
            "ok": self.fp_healthy == 0 and not self.undetected,
            "healthy_false_positives": self.fp_healthy,
            "undetected_kills": self.undetected,
        }

    def as_dict(self) -> dict:
        return {
            "members": self.members,
            "epoch": self.epoch,
            "duration": self.duration,
            "convergence_time": self.convergence_time,
            "kills": self.kills,
            "false_positives": self.false_positives,
            "fp_total": self.fp_total,
            "fp_excused": self.fp_excused,
            "fp_healthy": self.fp_healthy,
            "restored_events": self.restored_events,
            "events_total": self.events_total,
            "phases": self.phases,
            "detection_median": self.detection_median(),
            "dissemination_median": self.dissemination_median(),
            "gate": self.gate(),
        }


def _excuse_windows(
    schedule: ChaosSchedule, epoch: float, index: int, grace: float
) -> List[tuple]:
    """Wall-clock windows during which a FAILED event about member
    ``index`` is expected detector behaviour, not a healthy-phase FP."""
    windows = []
    for phase in schedule.phases:
        if phase.kind == "kill":
            continue
        tail = grace
        touches = index in phase.targets
        if phase.kind == "loss":
            # Heavy loss anywhere destabilises probes cluster-wide: the
            # prober's packets are as lossy as the victim's.
            touches = True
        if phase.kind == "partition":
            # Both sides of the cut legitimately declare the other side
            # failed, so every member is excused for the window — and
            # after the heal, stale suspect/dead claims from the far
            # side re-disseminate and run one more full suspicion cycle
            # before the victims' refutations win, so the tail is
            # doubled.
            touches = True
            tail = 2 * grace
        if touches:
            windows.append((epoch + phase.start, epoch + phase.end + tail))
    return windows


def analyze(
    schedule: ChaosSchedule,
    epoch: float,
    events: List[dict],
    member_names: Sequence[str],
    duration: float,
    convergence_time: Optional[float] = None,
    grace: float = 10.0,
) -> SoakAnalysis:
    """Classify ``events`` (merged, wall-stamped, see
    :class:`~repro.soak.scraper.SoakScraper`) against the schedule."""
    n = len(member_names)
    index_of: Dict[str, int] = {name: i for i, name in enumerate(member_names)}
    kill_wall: Dict[str, float] = {}
    for phase in schedule.of_kind("kill"):
        for target in phase.targets:
            name = member_names[target]
            kill_wall.setdefault(name, epoch + phase.start)
    killed = set(kill_wall)
    survivors = [name for name in member_names if name not in killed]

    analysis = SoakAnalysis(
        members=n,
        epoch=epoch,
        duration=duration,
        convergence_time=convergence_time,
        events_total=len(events),
        phases=[
            {
                "label": phase.label,
                "kind": phase.kind,
                "start": phase.start,
                "end": phase.end,
                "targets": list(phase.targets),
                "rate": phase.rate,
            }
            for phase in schedule.phases
        ],
    )

    # First FAILED about each subject per observer (for dissemination).
    first_failed: Dict[str, Dict[str, float]] = {}
    for event in events:
        kind = event.get("kind")
        if kind == "restored":
            analysis.restored_events += 1
        if kind != "failed":
            continue
        subject = event.get("subject", "")
        observer = event.get("observer", "")
        wall_t = event["wall_t"]
        victim_kill = kill_wall.get(subject)
        if victim_kill is not None and wall_t >= victim_kill:
            per_observer = first_failed.setdefault(subject, {})
            if observer not in per_observer or wall_t < per_observer[observer]:
                per_observer[observer] = wall_t
            continue
        # Subject's process was alive: a false positive.
        subject_index = index_of.get(subject)
        excused = False
        if subject_index is not None:
            for start, end in _excuse_windows(
                schedule, epoch, subject_index, grace
            ):
                if start <= wall_t <= end:
                    excused = True
                    break
        analysis.false_positives.append(
            {
                "t": wall_t - epoch,
                "observer": observer,
                "subject": subject,
                "excused": excused,
            }
        )
        analysis.fp_total += 1
        if excused:
            analysis.fp_excused += 1
        else:
            analysis.fp_healthy += 1

    for victim, kill_t in sorted(kill_wall.items(), key=lambda kv: kv[1]):
        per_observer = {
            observer: t
            for observer, t in first_failed.get(victim, {}).items()
            if observer in survivors
        }
        detected_by = len(per_observer)
        first = min(per_observer.values()) - kill_t if per_observer else None
        dissemination = (
            max(per_observer.values()) - kill_t
            if detected_by == len(survivors) and survivors
            else None
        )
        analysis.kills.append(
            {
                "victim": victim,
                "kill_t": kill_t - epoch,
                "first_detection": first,
                "dissemination": dissemination,
                "detected_by": detected_by,
                "survivors": len(survivors),
                "detected": detected_by == len(survivors) and bool(survivors),
            }
        )
    return analysis


# ---------------------------------------------------------------------- #
# Markdown rendering
# ---------------------------------------------------------------------- #

def _fmt(value: Optional[float], suffix: str = "s") -> str:
    return f"{value:.2f}{suffix}" if value is not None else "n/a"


def render_markdown(
    analysis: SoakAnalysis,
    sim: Optional[dict] = None,
    chaos_log: Optional[List[dict]] = None,
) -> str:
    """The human-readable soak report (markdown)."""
    gate = analysis.gate()
    lines = [
        "# Soak report",
        "",
        f"**Gate: {'PASS' if gate['ok'] else 'FAIL'}** — "
        f"{analysis.fp_healthy} healthy-phase false positive(s), "
        f"{len(analysis.undetected)} undetected kill(s)",
        "",
        "## Run",
        "",
        f"- members: {analysis.members}",
        f"- soak duration: {analysis.duration:g}s after chaos epoch",
        f"- convergence: {_fmt(analysis.convergence_time)} "
        f"(launch to full membership everywhere)",
        f"- events collected: {analysis.events_total}",
        "",
        "## Chaos phases",
        "",
        "| phase | kind | window | targets | rate |",
        "|---|---|---|---|---|",
    ]
    for phase in analysis.phases:
        targets = (
            ", ".join(str(t) for t in phase["targets"])
            if phase["targets"]
            else "all"
        )
        rate = f"{phase['rate']:g}" if phase["kind"] == "loss" else "-"
        window = (
            f"{phase['start']:g}s"
            if phase["kind"] == "kill"
            else f"{phase['start']:g}-{phase['end']:g}s"
        )
        lines.append(
            f"| {phase['label']} | {phase['kind']} | {window} "
            f"| {targets} | {rate} |"
        )
    lines += [
        "",
        "## Failure detection",
        "",
        "| victim | killed at | first detection | full dissemination "
        "| detected by |",
        "|---|---|---|---|---|",
    ]
    for kill in analysis.kills:
        lines.append(
            f"| {kill['victim']} | {kill['kill_t']:g}s "
            f"| {_fmt(kill['first_detection'])} "
            f"| {_fmt(kill['dissemination'])} "
            f"| {kill['detected_by']}/{kill['survivors']} |"
        )
    if not analysis.kills:
        lines.append("| _no kill phases_ | | | | |")
    lines += [
        "",
        f"- first-detection median: {_fmt(analysis.detection_median())}",
        f"- dissemination median: {_fmt(analysis.dissemination_median())}",
        "",
        "## False positives",
        "",
        f"- total FAILED events about live members: {analysis.fp_total}",
        f"- excused (inside a chaos window + grace): {analysis.fp_excused}",
        f"- **healthy-phase: {analysis.fp_healthy}**",
        f"- restored events: {analysis.restored_events}",
    ]
    if sim is not None:
        lines += [
            "",
            "## Simulator comparison",
            "",
            "Same schedule replayed on the deterministic simulator "
            "(`repro.soak.sim_compare`); wall-clock physics vs virtual "
            "time.",
            "",
            "| metric | real | sim |",
            "|---|---|---|",
            f"| first-detection median | {_fmt(analysis.detection_median())} "
            f"| {_fmt(sim.get('detection_median'))} |",
            f"| dissemination median | {_fmt(analysis.dissemination_median())} "
            f"| {_fmt(sim.get('dissemination_median'))} |",
            f"| undetected kills | {len(analysis.undetected)} "
            f"| {len(sim.get('undetected', []))} |",
            f"| false positives | {analysis.fp_total} "
            f"| {sim.get('false_positives', 0)} |",
        ]
    if chaos_log:
        jitter = [entry["t"] - entry["planned_t"] for entry in chaos_log]
        lines += [
            "",
            "## Chaos execution",
            "",
            f"- actions executed: {len(chaos_log)}",
            f"- max signal jitter: {max(jitter):.3f}s",
        ]
    lines += [
        "",
        "## Gate",
        "",
        f"- healthy-phase false positives: {gate['healthy_false_positives']}",
        f"- undetected kills: "
        f"{', '.join(gate['undetected_kills']) or 'none'}",
        f"- verdict: {'PASS' if gate['ok'] else 'FAIL'}",
        "",
    ]
    return "\n".join(lines)
