"""End-to-end soak orchestration (the ``repro soak`` command's engine).

One :func:`run_soak` call is one soak run:

1. spawn N real members (:class:`~repro.soak.launcher.SoakLauncher`) and
   start scraping their admin APIs;
2. wait for full membership convergence everywhere — the run aborts if
   the cluster cannot even form;
3. pick the chaos **epoch** a short margin in the future, deliver the
   per-member fault plans (transport-level loss/partition) and start the
   :class:`~repro.soak.chaos.ChaosDriver` (process-level kill/pause);
4. soak for ``duration`` wall seconds past the epoch, scraping all the
   while;
5. tear the cluster down, classify the merged event record
   (:func:`~repro.soak.report.analyze`), replay the same schedule on the
   simulator (:func:`~repro.soak.sim_compare.run_sim_comparison`), and
   write the report artifact (``report.json`` + ``report.md`` + the raw
   event/series/metrics dumps) into the run directory.

Progress counters land in a :class:`~repro.ops.registry.MetricsRegistry`
under ``lifeguard_soak_*`` and are included in the JSON artifact, so a
soak run is observable with the same machinery as a live member.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.ops.registry import MetricsRegistry
from repro.soak.chaos import ChaosDriver
from repro.soak.launcher import SoakLauncher
from repro.soak.report import SoakAnalysis, analyze, render_markdown
from repro.soak.schedule import ChaosSchedule
from repro.soak.scraper import SoakScraper
from repro.soak.sim_compare import run_sim_comparison


@dataclass
class SoakParams:
    """Knobs for one soak run."""

    members: int
    schedule: ChaosSchedule
    #: Wall seconds to soak *after* the chaos epoch. Must cover the
    #: schedule plus detection slack.
    duration: float
    #: Run directory (logs, plans, artifacts). Auto-derived when empty.
    run_dir: str = ""
    host: str = "127.0.0.1"
    probe_interval: float = 0.5
    alpha: float = 5.0
    beta: float = 6.0
    seed: int = 0
    stagger: float = 0.1
    ready_timeout: float = 30.0
    converge_timeout: float = 60.0
    #: Seconds between the convergence instant and the chaos epoch
    #: (plan files must reach every member's watcher first).
    epoch_margin: float = 2.0
    scrape_interval: float = 1.0
    #: Replay the schedule on the simulator for the comparison section.
    sim_compare: bool = True
    #: Grace tail after a chaos window during which FAILED events about
    #: its targets stay excused (suspicion timeouts in flight). Derived
    #: from the suspicion maximum when 0.
    fp_grace: float = 0.0

    def __post_init__(self) -> None:
        if self.members < 2:
            raise ValueError("a soak needs at least 2 members")
        if self.duration <= self.schedule.end:
            raise ValueError(
                f"duration ({self.duration:g}s) must exceed the schedule's "
                f"last window ({self.schedule.end:g}s) to leave detection "
                f"slack"
            )
        if self.schedule.max_target() >= self.members:
            raise ValueError(
                f"schedule targets member {self.schedule.max_target()} but "
                f"only {self.members} members are launched"
            )

    def grace(self) -> float:
        if self.fp_grace > 0:
            return self.fp_grace
        # Max suspicion timeout + a couple of probe rounds of slack.
        import math

        log_n = max(1.0, math.log10(max(self.members, 2)))
        return (
            self.beta * self.alpha * log_n * self.probe_interval
            + 5 * self.probe_interval
        )


@dataclass
class SoakResult:
    """What one soak run produced."""

    analysis: SoakAnalysis
    sim: Optional[dict]
    run_dir: str
    report_json: str
    report_md: str
    chaos_log: List[dict] = field(default_factory=list)

    @property
    def gate_ok(self) -> bool:
        return self.analysis.gate()["ok"]


def _soak_metrics(registry: MetricsRegistry):
    return {
        "runs": registry.counter(
            "lifeguard_soak_runs_total", "Soak runs started."
        ),
        "members": registry.counter(
            "lifeguard_soak_members_spawned_total",
            "Member processes spawned across soak runs.",
        ),
        "actions": registry.counter(
            "lifeguard_soak_chaos_actions_total",
            "Chaos actions (kill/pause/resume) executed.",
        ),
        "kills_detected": registry.counter(
            "lifeguard_soak_kills_detected_total",
            "Killed members fully detected by all survivors.",
        ),
        "kills_missed": registry.counter(
            "lifeguard_soak_kills_missed_total",
            "Killed members some survivor never declared failed.",
        ),
        "fp": registry.counter(
            "lifeguard_soak_false_positives_total",
            "FAILED events about live members during soak runs.",
        ),
        "fp_healthy": registry.counter(
            "lifeguard_soak_healthy_false_positives_total",
            "False positives outside every chaos window (gate metric).",
        ),
        "scrape_errors": registry.counter(
            "lifeguard_soak_scrape_errors_total",
            "Failed admin-API polls (expected for killed members).",
        ),
        "convergence": registry.gauge(
            "lifeguard_soak_convergence_seconds",
            "Launch-to-convergence time of the latest soak run.",
        ),
    }


def run_soak(
    params: SoakParams,
    registry: Optional[MetricsRegistry] = None,
    log: Callable[[str], None] = lambda message: None,
) -> SoakResult:
    """Run one full soak; returns the result (artifacts written)."""
    registry = registry if registry is not None else MetricsRegistry()
    metrics = _soak_metrics(registry)
    metrics["runs"].inc()

    run_dir = params.run_dir or os.path.join(
        "soak-runs", time.strftime("%Y%m%d-%H%M%S")
    )
    os.makedirs(run_dir, exist_ok=True)
    params.schedule.dump(os.path.join(run_dir, "schedule.json"))

    launcher = SoakLauncher(
        run_dir=run_dir,
        host=params.host,
        probe_interval=params.probe_interval,
        alpha=params.alpha,
        beta=params.beta,
        seed=params.seed,
        stagger=params.stagger,
        ready_timeout=params.ready_timeout,
    )
    launch_t = time.time()
    chaos: Optional[ChaosDriver] = None
    scraper: Optional[SoakScraper] = None
    try:
        log(f"spawning {params.members} members into {run_dir} ...")
        launcher.spawn_all(params.members)
        metrics["members"].inc(params.members)

        scraper = SoakScraper(
            launcher.members, interval=params.scrape_interval
        )
        converged_at = scraper.wait_converged(
            params.members, params.converge_timeout
        )
        if converged_at is None:
            raise RuntimeError(
                f"cluster did not converge within {params.converge_timeout}s"
            )
        convergence_time = converged_at - launch_t
        metrics["convergence"].set(convergence_time)
        log(f"converged in {convergence_time:.1f}s; starting scraper")
        scraper.start()

        epoch = time.time() + params.epoch_margin
        written = launcher.write_fault_plans(params.schedule, epoch)
        log(
            f"chaos epoch in {params.epoch_margin:g}s; "
            f"{len(written)} fault plan(s) delivered"
        )
        chaos = ChaosDriver(launcher, params.schedule, epoch)
        chaos.start()

        deadline = epoch + params.duration
        while time.time() < deadline:
            time.sleep(min(1.0, max(0.0, deadline - time.time())))
            launcher.reap()
        chaos.join(timeout=5.0)
        metrics["actions"].inc(len(chaos.log))
        log("soak window over; collecting final state")
        scraper.stop(final_poll=True)
    finally:
        if chaos is not None:
            chaos.stop()
        if scraper is not None and not scraper.stopped:
            scraper.stop(final_poll=False)
        launcher.terminate_all()

    metrics["scrape_errors"].inc(scraper.scrape_errors)
    analysis = analyze(
        params.schedule,
        epoch,
        scraper.merged_events(),
        [record.name for record in launcher.members],
        duration=params.duration,
        convergence_time=convergence_time,
        grace=params.grace(),
    )
    for kill in analysis.kills:
        metrics["kills_detected" if kill["detected"] else "kills_missed"].inc()
    metrics["fp"].inc(analysis.fp_total)
    metrics["fp_healthy"].inc(analysis.fp_healthy)

    sim = None
    if params.sim_compare:
        log("replaying the schedule on the simulator ...")
        sim = run_sim_comparison(
            params.schedule,
            params.members,
            probe_interval=params.probe_interval,
            alpha=params.alpha,
            beta=params.beta,
            seed=params.seed,
            duration=params.duration,
        )

    report_json, report_md = _write_artifacts(
        run_dir, params, analysis, sim, chaos.log if chaos else [],
        launcher, scraper, registry,
    )
    log(f"report written: {report_md}")
    return SoakResult(
        analysis=analysis,
        sim=sim,
        run_dir=run_dir,
        report_json=report_json,
        report_md=report_md,
        chaos_log=chaos.log if chaos else [],
    )


def _write_artifacts(
    run_dir: str,
    params: SoakParams,
    analysis: SoakAnalysis,
    sim: Optional[dict],
    chaos_log: List[dict],
    launcher: SoakLauncher,
    scraper: SoakScraper,
    registry: MetricsRegistry,
):
    from repro.ops.exposition import render_text
    from repro.ops.schema import envelope

    payload = envelope(
        "soak-report",
        {
            "params": {
                "members": params.members,
                "duration": params.duration,
                "probe_interval": params.probe_interval,
                "alpha": params.alpha,
                "beta": params.beta,
                "seed": params.seed,
                "host": params.host,
            },
            "analysis": analysis.as_dict(),
            "sim": sim,
            "chaos_log": chaos_log,
            "members": launcher.registry(),
            "scrape_errors": scraper.scrape_errors,
        },
    )
    report_json = os.path.join(run_dir, "report.json")
    with open(report_json, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    report_md = os.path.join(run_dir, "report.md")
    with open(report_md, "w", encoding="utf-8") as handle:
        handle.write(render_markdown(analysis, sim, chaos_log))
    with open(
        os.path.join(run_dir, "events.jsonl"), "w", encoding="utf-8"
    ) as handle:
        for event in scraper.merged_events():
            handle.write(json.dumps(event, separators=(",", ":")) + "\n")
    with open(
        os.path.join(run_dir, "series.jsonl"), "w", encoding="utf-8"
    ) as handle:
        for snap in scraper.series:
            handle.write(json.dumps(snap, separators=(",", ":")) + "\n")
    with open(
        os.path.join(run_dir, "soak-metrics.prom"), "w", encoding="utf-8"
    ) as handle:
        handle.write(render_text(registry))
    return report_json, report_md
