"""Executes the process-level half of a chaos schedule in wall time.

The transport-level phases (loss, partition) are enforced *inside* each
member by its :class:`~repro.faults.FaultPlan` — nothing to do here at
runtime. The process-level phases need an external hand on the signal:

* ``kill``  -> SIGKILL at ``epoch + start`` (crash, no goodbye);
* ``pause`` -> SIGSTOP at ``epoch + start``, SIGCONT at ``epoch + end``
  (the paper's unresponsive-but-alive incident shape).

The driver turns the schedule into a sorted action list and sleeps
between actions in short increments so a stop request (teardown, ^C)
interrupts within ~100 ms. Every action lands in :attr:`ChaosDriver.log`
with its intended and actual wall time, so the report can bound signal
jitter.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro.soak.launcher import SoakLauncher
from repro.soak.schedule import ChaosSchedule

#: Maximum sleep slice between actions (keeps stop requests responsive).
_TICK = 0.1


class ChaosDriver:
    """Runs the kill/pause phases of ``schedule`` against ``launcher``.

    Either call :meth:`run` inline (blocks until the last action) or
    :meth:`start`/:meth:`join` to drive from a background thread while
    the caller scrapes.
    """

    def __init__(
        self, launcher: SoakLauncher, schedule: ChaosSchedule, epoch: float
    ) -> None:
        self.launcher = launcher
        self.schedule = schedule
        self.epoch = epoch
        #: Executed actions: ``{"t", "planned_t", "action", "index",
        #: "phase", "ok"}`` (wall-clock unix seconds).
        self.log: List[dict] = []
        self._actions = self._build_actions()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _build_actions(self) -> List[tuple]:
        actions = []
        for phase in self.schedule.phases:
            if phase.kind == "kill":
                for target in phase.targets:
                    actions.append((phase.start, "kill", target, phase.label))
            elif phase.kind == "pause":
                for target in phase.targets:
                    actions.append((phase.start, "pause", target, phase.label))
                    actions.append((phase.end, "resume", target, phase.label))
        actions.sort(key=lambda item: item[0])
        return actions

    @property
    def actions(self) -> List[tuple]:
        """The planned ``(offset, verb, index, phase_label)`` list."""
        return list(self._actions)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run(self) -> List[dict]:
        """Execute all actions; returns the execution log."""
        for offset, verb, index, label in self._actions:
            planned = self.epoch + offset
            while not self._stop.is_set():
                remaining = planned - time.time()
                if remaining <= 0:
                    break
                time.sleep(min(_TICK, remaining))
            if self._stop.is_set():
                break
            ok = getattr(self.launcher, verb)(index)
            self.log.append(
                {
                    "t": time.time(),
                    "planned_t": planned,
                    "action": verb,
                    "index": index,
                    "phase": label,
                    "ok": ok,
                }
            )
        return self.log

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("chaos driver already started")
        self._thread = threading.Thread(
            target=self.run, daemon=True, name="soak-chaos"
        )
        self._thread.start()

    def join(self, timeout: Optional[float] = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    def stop(self) -> None:
        self._stop.set()
        self.join(timeout=1.0)
