"""Real-cluster chaos soak harness (see docs/SOAK.md).

The simulator reproduces the paper's numbers in virtual time; this
package checks them against *reality*: it launches N genuine
:class:`~repro.transport.udp.UdpMember` processes on one host
(:mod:`~repro.soak.launcher`), executes a declarative JSON chaos
schedule against them (:mod:`~repro.soak.schedule`,
:mod:`~repro.soak.chaos` — kill/SIGSTOP at the process level,
loss/partition at the transport's fault-plan boundary), scrapes every
member's live ``/metrics`` and ``/events`` admin endpoints into one
merged wall-clock time-series (:mod:`~repro.soak.scraper`), and distils
a JSON+markdown soak report with per-phase detection latency, false
positive/negative counts and convergence time, paired against a
simulator run of the same schedule (:mod:`~repro.soak.report`,
:mod:`~repro.soak.sim_compare`).

Entry point: ``repro soak --members N --schedule file.json --duration S``
(:func:`~repro.soak.runner.run_soak`).
"""

from repro.soak.chaos import ChaosDriver
from repro.soak.launcher import MemberRecord, SoakLauncher
from repro.soak.report import SoakAnalysis, analyze, render_markdown
from repro.soak.runner import SoakParams, SoakResult, run_soak
from repro.soak.schedule import (
    PHASE_KINDS,
    ChaosPhase,
    ChaosSchedule,
    member_fault_plan,
)
from repro.soak.scraper import SoakScraper
from repro.soak.sim_compare import run_sim_comparison

__all__ = [
    "ChaosDriver",
    "ChaosPhase",
    "ChaosSchedule",
    "MemberRecord",
    "PHASE_KINDS",
    "SoakAnalysis",
    "SoakLauncher",
    "SoakParams",
    "SoakResult",
    "SoakScraper",
    "analyze",
    "member_fault_plan",
    "render_markdown",
    "run_sim_comparison",
    "run_soak",
]
