"""Entry point for one soak-harness member process (``repro member``).

The :class:`~repro.soak.launcher.SoakLauncher` spawns one of these per
cluster member. The process:

1. builds a Lifeguard :class:`~repro.config.SwimConfig` from the CLI
   flags (ephemeral UDP and admin ports by default, so dozens of members
   share one host without port planning);
2. creates a real :class:`~repro.transport.udp.UdpMember` and prints a
   single machine-readable *ready line* on stdout —
   ``{"event": "ready", "address": ..., "admin": ..., "pid": ...}`` —
   which is how the launcher learns the ports the kernel actually chose;
3. starts the protocol, joins the given seed addresses, and runs until
   SIGTERM/SIGINT;
4. optionally watches a fault-plan file (``--watch-fault-plan``): the
   launcher writes each member's :class:`~repro.faults.FaultPlan` only
   once the cluster has converged and the chaos epoch is known, and the
   watcher arms it on the live transport via
   :meth:`~repro.transport.udp.UdpTransport.set_fault_plan`. A plan file
   that already exists at startup is instead applied through the static
   ``SwimConfig(fault_plan=...)`` hook;
5. self-terminates if its parent launcher dies (``--parent-pid``), so a
   crashed harness never strands orphan members on the host.

Everything after the ready line on stdout is free-form logging; the
launcher tees it into the member's log file.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
from typing import List, Optional

from repro.config import SwimConfig
from repro.faults import FaultPlan

#: How often the fault-plan watcher and parent-liveness checks run (s).
_WATCH_INTERVAL = 0.25


def build_config(args: argparse.Namespace) -> SwimConfig:
    """The member's protocol config; shared with tests for parity."""
    probe_timeout = min(0.5, args.probe_interval / 2.0)
    overrides: dict = dict(
        probe_interval=args.probe_interval,
        probe_timeout=probe_timeout,
        admin_port=args.admin_port,
        admin_host=args.admin_host,
    )
    if args.fault_plan and os.path.exists(args.fault_plan):
        # Static hook: a plan present before the member exists rides in
        # on the (frozen) config itself.
        overrides["fault_plan"] = FaultPlan.load(args.fault_plan)
    return SwimConfig.lifeguard(
        alpha=args.alpha, beta=args.beta, **overrides
    )


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(prog="repro member")
    parser.add_argument("--name", required=True, help="member name")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind interface (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="UDP/TCP port (default: 0 = ephemeral)")
    parser.add_argument("--admin-port", type=int, default=0,
                        help="admin API port (default: 0 = ephemeral)")
    parser.add_argument("--admin-host", default="127.0.0.1",
                        help="admin API interface (default: 127.0.0.1)")
    parser.add_argument("--join", action="append", default=[],
                        metavar="HOST:PORT",
                        help="seed address to join (repeatable)")
    parser.add_argument("--probe-interval", type=float, default=0.5,
                        help="base probe interval, seconds (default: 0.5)")
    parser.add_argument("--alpha", type=float, default=5.0,
                        help="suspicion alpha (default: 5)")
    parser.add_argument("--beta", type=float, default=6.0,
                        help="suspicion beta (default: 6)")
    parser.add_argument("--seed", type=int, default=0,
                        help="RNG seed for this member (default: 0)")
    parser.add_argument("--fault-plan", metavar="PATH",
                        help="fault-plan JSON file (repro.faults)")
    parser.add_argument("--watch-fault-plan", action="store_true",
                        help="poll --fault-plan for (re)appearance and arm "
                             "it on the live transport")
    parser.add_argument("--parent-pid", type=int, default=0,
                        help="exit when this process is no longer the "
                             "parent (orphan protection)")
    return parser.parse_args(argv)


async def _watch_plan(path: str, transport, applied_mtime: float) -> None:
    """Poll ``path``; arm each new plan version on ``transport``."""
    last = applied_mtime
    while True:
        await asyncio.sleep(_WATCH_INTERVAL)
        try:
            mtime = os.stat(path).st_mtime
        except OSError:
            continue
        if mtime == last:
            continue
        try:
            plan = FaultPlan.load(path)
        except (OSError, ValueError, KeyError):
            continue  # partially written; the launcher replaces atomically
        transport.set_fault_plan(plan)
        last = mtime
        print(
            f"fault plan armed: {len(plan.windows)} window(s), "
            f"epoch={plan.epoch:.3f}",
            flush=True,
        )


async def _watch_parent(parent_pid: int, stop: asyncio.Event) -> None:
    while not stop.is_set():
        await asyncio.sleep(_WATCH_INTERVAL)
        if os.getppid() != parent_pid:
            stop.set()
            try:
                print("parent launcher died; exiting", flush=True)
            except OSError:
                pass  # stdout pipe died with the launcher
            return


async def _amain(args: argparse.Namespace) -> int:
    import random

    from repro.transport.udp import UdpMember

    config = build_config(args)
    member = await UdpMember.create(
        args.name,
        config,
        host=args.host,
        port=args.port,
        rng=random.Random(args.seed),
    )
    print(
        json.dumps(
            {
                "event": "ready",
                "name": args.name,
                "address": member.address,
                "admin": member.admin_address,
                "pid": os.getpid(),
            },
            separators=(",", ":"),
        ),
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    member.start()
    if args.join:
        member.join(list(args.join))
    tasks = []
    if args.fault_plan and args.watch_fault_plan:
        applied = -1.0
        if config.fault_plan is not None:
            applied = os.stat(args.fault_plan).st_mtime
        tasks.append(
            asyncio.ensure_future(
                _watch_plan(args.fault_plan, member.transport, applied)
            )
        )
    if args.parent_pid:
        tasks.append(asyncio.ensure_future(_watch_parent(args.parent_pid, stop)))
    try:
        await stop.wait()
    finally:
        for task in tasks:
            task.cancel()
        await member.stop()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """``repro member`` entry point; returns a process exit code."""
    args = _parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:  # pragma: no cover - signal race on teardown
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    sys.exit(main())
