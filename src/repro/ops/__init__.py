"""Live operations plane: metrics, exposition, admin API, event streaming.

The paper's evaluation substrate is Consul/memberlist operated as a real
service — the Figure 1 flapping incident was diagnosed from live agent
telemetry and per-agent DEBUG logs. This package gives the reproduction
the same operational surface:

* :mod:`repro.ops.registry` — a dependency-free metrics registry
  (labelled counters, gauges, fixed-bucket histograms) plus
  :class:`~repro.ops.registry.NodeCollector`, which snapshots live state
  from a :class:`~repro.swim.node.SwimNode` and its
  :class:`~repro.metrics.telemetry.Telemetry` at scrape time.
* :mod:`repro.ops.exposition` — Prometheus text-format rendering.
* :mod:`repro.ops.http` — a minimal asyncio HTTP/1.1 admin server
  (``/metrics``, ``/members``, ``/suspicions``, ``/info``, ``/health``,
  ``/events``).
* :mod:`repro.ops.events` — a bounded ring buffer of membership events
  with monotonically increasing sequence numbers, streamable as JSON
  lines and resumable via ``/events?since=<seq>``.
* :mod:`repro.ops.schema` — the shared payload schema used by both the
  admin API and the CLI's ``--json`` output.

The registry works against *any* node, simulated or real: the sim
runtime installs it via
:meth:`SimCluster.install_ops_registry <repro.sim.runtime.SimCluster.install_ops_registry>`
(so experiments can assert on the same metric names an operator would
scrape), and :class:`~repro.transport.udp.UdpMember` serves it over HTTP
when ``admin_port`` is set on :class:`~repro.config.SwimConfig`.
"""

from repro.ops.events import EventStream
from repro.ops.exposition import CONTENT_TYPE, render_text
from repro.ops.http import AdminServer
from repro.ops.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NodeCollector,
)
from repro.ops.schema import SCHEMA_VERSION, envelope

__all__ = [
    "AdminServer",
    "CONTENT_TYPE",
    "Counter",
    "EventStream",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NodeCollector",
    "SCHEMA_VERSION",
    "envelope",
    "render_text",
]
