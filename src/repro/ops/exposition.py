"""Prometheus text exposition format (version 0.0.4), no third-party deps.

Renders a :class:`~repro.ops.registry.MetricsRegistry` into the plain
text format Prometheus scrapes::

    # HELP lifeguard_lhm_score Current Local Health Multiplier score.
    # TYPE lifeguard_lhm_score gauge
    lifeguard_lhm_score{node="node-0"} 2

Histograms render cumulative ``_bucket`` series (with the mandatory
``+Inf`` bucket) plus ``_sum`` and ``_count``, exactly as the format
specification requires.
"""

from __future__ import annotations

from repro.ops.registry import MetricsRegistry

#: Value for the HTTP ``Content-Type`` header on ``/metrics`` responses.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_HELP_ESCAPES = {"\\": "\\\\", "\n": "\\n"}
_LABEL_ESCAPES = {"\\": "\\\\", "\n": "\\n", '"': '\\"'}


def _escape(value: str, table: dict) -> str:
    out = value
    for char, replacement in table.items():
        out = out.replace(char, replacement)
    return out


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float) and value == int(value)):
        return str(int(value))
    return repr(float(value))


def _format_labels(label_pairs) -> str:
    if not label_pairs:
        return ""
    inner = ",".join(
        f'{name}="{_escape(str(value), _LABEL_ESCAPES)}"'
        for name, value in label_pairs
    )
    return "{" + inner + "}"


def render_text(registry: MetricsRegistry) -> str:
    """Render every family in ``registry`` (collectors run first)."""
    lines = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {_escape(metric.help, _HELP_ESCAPES)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for sample_name, label_pairs, value in metric.samples():
            lines.append(
                f"{sample_name}{_format_labels(label_pairs)} {_format_value(value)}"
            )
    return "\n".join(lines) + "\n"
