"""Bounded ring buffer of membership events with resumable streaming.

The paper's incident analysis (Figure 1) leaned on per-agent DEBUG logs;
:class:`EventStream` is the live equivalent: it is an
:class:`~repro.swim.events.EventListener` that stamps every
:class:`~repro.swim.events.MemberEvent` with a monotonically increasing
sequence number and retains the most recent ``capacity`` of them.
Consumers poll ``GET /events?since=<seq>`` (see :mod:`repro.ops.http`)
and resume from the last sequence number they saw — entries are returned
exactly once per consumer position, with no duplication across polls.

When a slow consumer falls further behind than the buffer holds, the gap
is *visible*: the first entry returned has a sequence number larger than
``since + 1`` and :attr:`EventStream.dropped` counts evictions.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, List, Optional

from repro.swim.events import MemberEvent


def event_record(seq: int, event: MemberEvent) -> Dict[str, object]:
    """The JSON-safe wire form of one stamped event."""
    return {
        "seq": seq,
        "t": event.time,
        "observer": event.observer,
        "subject": event.subject,
        "kind": event.kind.value,
        "incarnation": event.incarnation,
    }


class EventStream:
    """A bounded, sequence-stamped sink for membership events.

    Usable directly as a node listener (``SwimNode(..., listener=stream)``
    or ``node.add_listener(stream)``).

    Parameters
    ----------
    capacity:
        Maximum retained events; the oldest are evicted first.
    """

    __slots__ = ("_entries", "_next_seq", "dropped")

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._entries: "deque[Dict[str, object]]" = deque(maxlen=capacity)
        self._next_seq = 1
        #: Events evicted before any consumer could have read them via
        #: ``since=0`` (buffer overflow count).
        self.dropped = 0

    def __call__(self, event: MemberEvent) -> None:
        self.append(event)

    def append(self, event: MemberEvent) -> int:
        """Stamp and retain ``event``; returns its sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        if len(self._entries) == self._entries.maxlen:
            self.dropped += 1
        self._entries.append(event_record(seq, event))
        return seq

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest event (0 when none yet)."""
        return self._next_seq - 1

    @property
    def first_seq(self) -> int:
        """Sequence number of the oldest retained event (0 when empty)."""
        if not self._entries:
            return 0
        return self._entries[0]["seq"]  # type: ignore[return-value]

    def since(self, seq: int = 0, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Entries with sequence numbers strictly greater than ``seq``.

        Polling with the last seen sequence number yields each event
        exactly once. ``limit`` caps the batch size (oldest first).
        """
        out = [entry for entry in self._entries if entry["seq"] > seq]
        if limit is not None:
            out = out[:limit]
        return out

    @staticmethod
    def to_jsonl(records: List[Dict[str, object]]) -> str:
        """Render records as JSON lines (one object per line)."""
        return "".join(
            json.dumps(record, separators=(",", ":")) + "\n" for record in records
        )
