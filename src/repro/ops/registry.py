"""A dependency-free metrics registry with Prometheus semantics.

Three metric types, all optionally labelled:

* :class:`Counter` — monotonically increasing totals.
* :class:`Gauge` — point-in-time values.
* :class:`Histogram` — fixed cumulative buckets plus ``_sum``/``_count``.

Metrics are owned by a :class:`MetricsRegistry`. Besides direct
instrumentation (``counter.labels(node="a").inc()``), the registry
supports pull-time *collectors*: callbacks run at the start of every
:meth:`MetricsRegistry.collect` that snapshot external state into
gauges/counters. :class:`NodeCollector` is the collector for one
:class:`~repro.swim.node.SwimNode`: member counts by state, incarnation,
LHM score, scaled probe timing, suspicion-table size, broadcast-queue
depths, the full :class:`~repro.metrics.telemetry.Telemetry` /
:class:`~repro.metrics.telemetry.TransportStats` counter set, the
fallback-probe, push-pull sync and probe-scheduler-selection counter
families, a probe-RTT
histogram fed by the node's ack-latency hook
(:attr:`SwimNode.on_probe_rtt <repro.swim.node.SwimNode.on_probe_rtt>`),
and a changes-per-merge histogram fed by the node's sync hook
(:attr:`SwimNode.on_sync_merge <repro.swim.node.SwimNode.on_sync_merge>`).

Every per-node sample carries a ``node`` label, so one registry can host
a whole simulated cluster (see
:meth:`SimCluster.install_ops_registry
<repro.sim.runtime.SimCluster.install_ops_registry>`) with the same
metric names a single live member exposes over HTTP.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.lhm import LhmEvent
from repro.swim.state import MemberState

#: Cumulative upper bounds (seconds) for the probe-RTT histogram. Spans
#: loopback (sub-millisecond) through LHM-scaled WAN timeouts.
DEFAULT_RTT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Cumulative upper bounds for the changes-per-merge histogram. A steady
#: cluster merges mostly zeroes; post-partition catch-up merges can apply
#: on the order of the member count.
SYNC_MERGE_BUCKETS: Tuple[float, ...] = (0, 1, 2, 5, 10, 25, 50, 100, 250)

#: Cumulative upper bounds for datagrams-per-syscall. Powers of two up
#: to twice the default ``transport_batch_size``; the asyncio backend
#: lands everything in the first bucket, full recvmmsg drains on the
#: batched backend land at the configured batch size.
TRANSPORT_BATCH_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class _Child:
    """One labelled time series inside a metric family."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0


class _HistogramChild:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0


class Metric:
    """Base class for one metric family (name + type + label names)."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str]) -> None:
        if not name or not name.replace("_", "a").isalnum() or name[0].isdigit():
            raise ValueError(f"invalid metric name: {name!r}")
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], object] = {}

    def _child_for(self, labels: Dict[str, str]):
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        key = tuple(str(labels[k]) for k in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._new_child()
        return child

    def _new_child(self):
        return _Child()

    def labels(self, **labels: str):
        """The child series for the given label values (created lazily)."""
        return self._child_for(labels)

    def samples(self) -> Iterable[Tuple[str, Tuple[Tuple[str, str], ...], float]]:
        """Yield ``(sample_name, label_pairs, value)`` for exposition."""
        for key, child in self._children.items():
            yield self.name, tuple(zip(self.labelnames, key)), child.value


class _CounterChild(_Child):
    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount

    def set_total(self, total: float) -> None:
        """Overwrite the running total.

        For collectors mirroring an externally maintained monotonic
        counter (e.g. :class:`~repro.metrics.telemetry.Telemetry`), where
        the source of truth is elsewhere and already monotonic.
        """
        self.value = total


class Counter(Metric):
    kind = "counter"

    def _new_child(self):
        return _CounterChild()

    def inc(self, amount: float = 1, **labels: str) -> None:
        self._child_for(labels).inc(amount)


class _GaugeChild(_Child):
    __slots__ = ()

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Gauge(Metric):
    kind = "gauge"

    def _new_child(self):
        return _GaugeChild()

    def set(self, value: float, **labels: str) -> None:
        self._child_for(labels).set(value)


class Histogram(Metric):
    """Fixed-bucket histogram (cumulative ``le`` buckets, Prometheus style)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_RTT_BUCKETS,
    ) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket")
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be sorted and distinct")
        super().__init__(name, help_text, labelnames)
        self.buckets = bounds

    def _new_child(self):
        return _HistogramChild(len(self.buckets))

    def observe(self, value: float, **labels: str) -> None:
        self._observe_child(self._child_for(labels), value)

    def _observe_child(self, child: _HistogramChild, value: float) -> None:
        child.sum += value
        child.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                child.bucket_counts[index] += 1
                break

    def labels(self, **labels: str) -> "_BoundHistogram":
        return _BoundHistogram(self, dict(labels))

    def samples(self):
        for key, child in self._children.items():
            base = tuple(zip(self.labelnames, key))
            cumulative = 0
            for bound, count in zip(self.buckets, child.bucket_counts):
                cumulative += count
                yield (
                    self.name + "_bucket",
                    base + (("le", _format_bound(bound)),),
                    cumulative,
                )
            yield self.name + "_bucket", base + (("le", "+Inf"),), child.count
            yield self.name + "_sum", base, child.sum
            yield self.name + "_count", base, child.count


class _BoundHistogram:
    """A histogram pre-bound to one label set.

    Labels are validated and the child series resolved once, at bind
    time, so :meth:`observe` is cheap enough for per-packet hot paths
    (the node's ack-latency hook fires on every directly-acked probe).
    """

    __slots__ = ("_histogram", "_child")

    def __init__(self, histogram: Histogram, labels: Dict[str, str]) -> None:
        self._histogram = histogram
        self._child = histogram._child_for(labels)

    def observe(self, value: float) -> None:
        self._histogram._observe_child(self._child, value)


def _format_bound(bound: float) -> str:
    return repr(bound) if bound != int(bound) else f"{bound:g}.0"


class MetricsRegistry:
    """Owns metric families and pull-time collectors.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same family (so several
    :class:`NodeCollector` instances can share families, distinguished by
    their ``node`` label), but re-asking with a different type or label
    set is an error.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._collectors: List[Callable[[], None]] = []

    def _get_or_create(self, cls, name, help_text, labelnames, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered with a different "
                    f"type or label set"
                )
            return existing
        metric = cls(name, help_text, labelnames, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_RTT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labelnames, buckets=buckets
        )

    def add_collector(self, collect: Callable[[], None]) -> None:
        """Register a callback run at the start of every :meth:`collect`."""
        self._collectors.append(collect)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def collect(self) -> List[Metric]:
        """Refresh collector-backed metrics and return all families,
        sorted by name for stable exposition output."""
        for collect in self._collectors:
            collect()
        return [self._metrics[name] for name in sorted(self._metrics)]


class NodeCollector:
    """Snapshots one :class:`~repro.swim.node.SwimNode` into a registry.

    All samples carry a ``node`` label with the member name. Construction
    registers (or reuses) the metric families and a pull-time collector;
    :meth:`install_rtt_hook` additionally wires the node's ack-latency
    hook into the ``lifeguard_probe_rtt_seconds`` histogram.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        node,
        rtt_buckets: Sequence[float] = DEFAULT_RTT_BUCKETS,
    ) -> None:
        self.registry = registry
        self.node = node
        label = ("node",)

        g, c = registry.gauge, registry.counter
        self._members = g(
            "lifeguard_members",
            "Known members by state, as seen by this node (includes itself).",
            ("node", "state"),
        )
        self._incarnation = g(
            "lifeguard_incarnation", "This member's own incarnation number.", label
        )
        self._lhm_score = g(
            "lifeguard_lhm_score",
            "Current Local Health Multiplier score (0 = healthy).",
            label,
        )
        self._lhm_max = g(
            "lifeguard_lhm_max", "LHM saturation limit S.", label
        )
        self._probe_interval = g(
            "lifeguard_probe_interval_seconds",
            "LHM-scaled probe interval currently in effect.",
            label,
        )
        self._probe_timeout = g(
            "lifeguard_probe_timeout_seconds",
            "LHM-scaled probe timeout currently in effect.",
            label,
        )
        self._suspicions = g(
            "lifeguard_suspicions",
            "Entries in the local suspicion table.",
            label,
        )
        self._queue_depth = g(
            "lifeguard_broadcast_queue_depth",
            "Broadcasts pending in the gossip queues.",
            ("node", "queue"),
        )
        self._running = g(
            "lifeguard_node_running",
            "1 while the protocol loops are running.",
            label,
        )
        self._msgs_sent = c(
            "lifeguard_msgs_sent_total", "Messages sent (compound = 1).", label
        )
        self._bytes_sent = c(
            "lifeguard_bytes_sent_total", "Payload bytes sent.", label
        )
        self._msgs_received = c(
            "lifeguard_msgs_received_total", "Messages received.", label
        )
        self._bytes_received = c(
            "lifeguard_bytes_received_total", "Payload bytes received.", label
        )
        self._reliable_msgs = c(
            "lifeguard_reliable_msgs_sent_total",
            "Messages sent over the reliable channel.",
            label,
        )
        self._reliable_bytes = c(
            "lifeguard_reliable_bytes_sent_total",
            "Payload bytes sent over the reliable channel.",
            label,
        )
        self._oversized = c(
            "lifeguard_oversized_broadcasts_total",
            "Broadcasts dropped as undeliverably large.",
            label,
        )
        self._by_kind_msgs = c(
            "lifeguard_msgs_sent_by_kind_total",
            "Messages sent by primary message kind.",
            ("node", "kind"),
        )
        self._by_kind_bytes = c(
            "lifeguard_bytes_sent_by_kind_total",
            "Payload bytes sent by primary message kind.",
            ("node", "kind"),
        )
        self._transport_events = c(
            "lifeguard_transport_events_total",
            "Channel-level transport events (see TransportStats).",
            ("node", "event"),
        )
        self._lhm_events = c(
            "lifeguard_lhm_events_total",
            "Local Health events recorded, by kind (counted even when "
            "LHA-Probe is disabled).",
            ("node", "event"),
        )
        self._fallback_probes = c(
            "lifeguard_fallback_probes_total",
            "Reliable-channel fallback probes by outcome (sent / ack / "
            "failure; an acked fallback suppresses the indirect round).",
            ("node", "outcome"),
        )
        self._syncs = c(
            "lifeguard_syncs_total",
            "Push-pull anti-entropy activity by kind (initiated / "
            "replies / merges).",
            ("node", "kind"),
        )
        self._sync_entries = c(
            "lifeguard_sync_entries_merged_total",
            "Member-table entries examined by push-pull merges.",
            label,
        )
        self._sync_changes = c(
            "lifeguard_sync_changes_total",
            "Local state changes applied by push-pull merges.",
            label,
        )
        self._scheduler_selections = c(
            "lifeguard_probe_scheduler_selections_total",
            "Probe targets selected, labelled by scheduling strategy "
            "(see docs/PROBE_SCHEDULING.md).",
            ("node", "strategy"),
        )
        self._transport_syscalls = c(
            "lifeguard_transport_syscalls_total",
            "Datagram syscalls issued by the transport backend (one "
            "recvmmsg/sendmmsg may move many datagrams).",
            ("node", "backend", "direction"),
        )
        self.transport_batch = registry.histogram(
            "lifeguard_transport_batch_size",
            "Datagrams moved per datagram syscall, by backend and "
            "direction (always 1 on the asyncio backend; actual "
            "recvmmsg/sendmmsg batch sizes on the batched backend).",
            ("node", "backend", "direction"),
            buckets=TRANSPORT_BATCH_BUCKETS,
        )
        self.sync_merge_changes = registry.histogram(
            "lifeguard_sync_merge_changes",
            "State changes applied per push-pull merge (0 = the snapshot "
            "taught us nothing; fed by the node's on_sync_merge hook).",
            label,
            buckets=SYNC_MERGE_BUCKETS,
        )
        self._sync_merge_child = self.sync_merge_changes.labels(node=node.name)
        self.rtt = registry.histogram(
            "lifeguard_probe_rtt_seconds",
            "Round-trip time of directly acked probes (ack received "
            "within the probe timeout; indirect and nack paths excluded).",
            label,
            buckets=rtt_buckets,
        )
        self._rtt_child = self.rtt.labels(node=node.name)
        registry.add_collector(self.collect)

    def install_rtt_hook(self) -> None:
        """Point the node's ack-latency hook at the RTT histogram."""
        self.node.on_probe_rtt = self.observe_rtt

    def install_sync_hook(self) -> None:
        """Point the node's merge hook at the changes-per-merge histogram."""
        self.node.on_sync_merge = self.observe_sync_merge

    def observe_rtt(self, target: str, rtt: float) -> None:
        del target  # per-target RTT series would explode cardinality
        self._rtt_child.observe(rtt)

    def observe_sync_merge(self, changes: int) -> None:
        self._sync_merge_child.observe(changes)

    def collect(self) -> None:
        node = self.node
        name = node.name
        members = node.members
        for state in MemberState:
            self._members.set(
                members.num_in_state(state), node=name, state=state.name.lower()
            )
        self._incarnation.set(node.incarnation, node=name)
        lhm = node.local_health
        self._lhm_score.set(lhm.score, node=name)
        self._lhm_max.set(lhm.max_value, node=name)
        self._probe_interval.set(node.current_probe_interval(), node=name)
        self._probe_timeout.set(node.current_probe_timeout(), node=name)
        self._suspicions.set(node.suspicion_count, node=name)
        self._queue_depth.set(len(node.broadcasts), node=name, queue="system")
        self._queue_depth.set(len(node.user_broadcasts), node=name, queue="user")
        self._running.set(1 if node.running else 0, node=name)

        telemetry = node.telemetry
        self._msgs_sent.labels(node=name).set_total(telemetry.msgs_sent)
        self._bytes_sent.labels(node=name).set_total(telemetry.bytes_sent)
        self._msgs_received.labels(node=name).set_total(telemetry.msgs_received)
        self._bytes_received.labels(node=name).set_total(telemetry.bytes_received)
        self._reliable_msgs.labels(node=name).set_total(telemetry.reliable_msgs_sent)
        self._reliable_bytes.labels(node=name).set_total(
            telemetry.reliable_bytes_sent
        )
        self._oversized.labels(node=name).set_total(telemetry.oversized_broadcasts)
        for kind, count in telemetry.msgs_by_kind.items():
            self._by_kind_msgs.labels(node=name, kind=kind).set_total(count)
        for kind, n_bytes in telemetry.bytes_by_kind.items():
            self._by_kind_bytes.labels(node=name, kind=kind).set_total(n_bytes)
        for event, count in telemetry.transport.as_dict().items():
            self._transport_events.labels(node=name, event=event).set_total(count)
        transport = telemetry.transport
        if transport.backend:
            be = transport.backend
            self._transport_syscalls.labels(
                node=name, backend=be, direction="send"
            ).set_total(transport.get("udp_send_syscalls"))
            self._transport_syscalls.labels(
                node=name, backend=be, direction="recv"
            ).set_total(transport.get("udp_recv_syscalls"))
            for direction in ("send", "recv"):
                self._mirror_batches(transport, be, direction, name)
        for event in LhmEvent:
            self._lhm_events.labels(node=name, event=event.value).set_total(
                lhm.event_count(event)
            )
        self._fallback_probes.labels(node=name, outcome="sent").set_total(
            telemetry.fallback_probes_sent
        )
        self._fallback_probes.labels(node=name, outcome="ack").set_total(
            telemetry.fallback_probe_acks
        )
        self._fallback_probes.labels(node=name, outcome="failure").set_total(
            telemetry.fallback_probe_failures
        )
        self._syncs.labels(node=name, kind="initiated").set_total(
            telemetry.syncs_initiated
        )
        self._syncs.labels(node=name, kind="replies").set_total(
            telemetry.sync_replies_sent
        )
        self._syncs.labels(node=name, kind="merges").set_total(telemetry.sync_merges)
        self._sync_entries.labels(node=name).set_total(telemetry.sync_entries_merged)
        self._sync_changes.labels(node=name).set_total(telemetry.sync_changes_applied)
        scheduler = members.probe_scheduler
        self._scheduler_selections.labels(
            node=name, strategy=scheduler.name
        ).set_total(scheduler.selections)

    def _mirror_batches(self, transport, backend, direction, name) -> None:
        """Overwrite one batch-size histogram series from the transport's
        ``(direction, size)`` counters — the pull-time analogue of
        ``set_total`` for histograms: the transport keeps the source of
        truth, the registry snapshots it at scrape time."""
        child = self.transport_batch.labels(
            node=name, backend=backend, direction=direction
        )._child
        bounds = self.transport_batch.buckets
        counts = [0] * len(bounds)
        total = 0
        weighted = 0.0
        for (d, size), n in transport.batches.items():
            if d != direction:
                continue
            total += n
            weighted += size * n
            for index, bound in enumerate(bounds):
                if size <= bound:
                    counts[index] += n
                    break
        child.bucket_counts = counts
        child.sum = weighted
        child.count = total
