"""The shared JSON payload schema for the ops plane and the CLI.

Both the admin API's structured endpoints (``/info``, ``/members``,
``/suspicions``) and the CLI's ``--json`` experiment output wrap their
payload in the same envelope::

    {"schema": "lifeguard-repro/v1", "kind": "<payload kind>", ...payload}

so downstream tooling can dispatch on ``kind`` and version-check on
``schema`` regardless of whether the data came from a live member or a
simulated experiment run.
"""

from __future__ import annotations

from typing import Dict, List

#: Version tag carried in every envelope.
SCHEMA_VERSION = "lifeguard-repro/v1"


def envelope(kind: str, payload: Dict[str, object]) -> Dict[str, object]:
    """Wrap ``payload`` in the shared schema envelope."""
    out: Dict[str, object] = {"schema": SCHEMA_VERSION, "kind": kind}
    out.update(payload)
    return out


def member_records(node) -> List[Dict[str, object]]:
    """This node's membership table as JSON-safe records."""
    return [
        {
            "name": member.name,
            "address": member.address,
            "state": member.state.name.lower(),
            "incarnation": member.incarnation,
            "state_changed_at": member.state_changed_at,
        }
        for member in node.members.members()
    ]


def node_info(node) -> Dict[str, object]:
    """The ``/info`` payload for one node (live or simulated)."""
    members = node.members
    lhm = node.local_health
    config = node.config
    state_counts = {}
    for member in members.members():
        key = member.state.name.lower()
        state_counts[key] = state_counts.get(key, 0) + 1
    telemetry = node.telemetry
    return envelope(
        "node-info",
        {
            "name": node.name,
            "address": members.local.address,
            "incarnation": node.incarnation,
            "running": node.running,
            "now": node.now(),
            "lhm": {
                "score": lhm.score,
                "max": lhm.max_value,
                "multiplier": lhm.multiplier,
                "healthy": lhm.healthy,
                "saturated": lhm.saturated,
            },
            "probe": {
                "base_interval": config.probe_interval,
                "base_timeout": config.probe_timeout,
                "interval": node.current_probe_interval(),
                "timeout": node.current_probe_timeout(),
            },
            "members": {
                "total": len(members),
                "alive": members.num_alive(),
                "by_state": state_counts,
            },
            "suspicions": node.suspicion_count,
            "flags": {
                "lha_probe": config.flags.lha_probe,
                "lha_suspicion": config.flags.lha_suspicion,
                "buddy_system": config.flags.buddy_system,
            },
            "telemetry": {
                "msgs_sent": telemetry.msgs_sent,
                "bytes_sent": telemetry.bytes_sent,
                "msgs_received": telemetry.msgs_received,
                "bytes_received": telemetry.bytes_received,
            },
        },
    )


def members_payload(node) -> Dict[str, object]:
    return envelope(
        "members", {"name": node.name, "members": member_records(node)}
    )


def suspicions_payload(node) -> Dict[str, object]:
    return envelope(
        "suspicions",
        {"name": node.name, "suspicions": node.suspicion_snapshot()},
    )
