"""Minimal asyncio HTTP/1.1 admin server for one live node.

Hand-rolled on ``asyncio.start_server`` — no third-party HTTP stack —
because the surface is tiny and read-only:

=====================  ==================================================
``GET /metrics``       Prometheus text exposition of the node's registry.
``GET /members``       JSON membership table.
``GET /suspicions``    JSON suspicion table (confirmations, deadlines).
``GET /info``          JSON node summary (shared schema with the CLI).
``GET /health``        Readiness: 200 while the Local Health Multiplier
                       is at or below the degraded threshold, 503 above
                       it — an overloaded member keeps *liveness* but
                       drops *readiness*, Consul-style.
``GET /events``        JSON-lines membership event stream; resume with
                       ``?since=<seq>`` (no duplication across polls).
=====================  ==================================================

Responses always close the connection (``Connection: close``); scrapers
and the ``watch`` CLI poll, they do not hold sockets open. Requests are
size-limited and non-GET methods are rejected, so a stray scanner cannot
wedge the protocol loops sharing the event loop.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.ops.events import EventStream
from repro.ops.exposition import CONTENT_TYPE, render_text
from repro.ops.registry import MetricsRegistry, NodeCollector
from repro.ops.schema import envelope, members_payload, node_info, suspicions_payload

_MAX_REQUEST_LINE = 4096
_MAX_HEADER_BYTES = 16 * 1024
_JSON_TYPE = "application/json; charset=utf-8"
_JSONL_TYPE = "application/jsonl; charset=utf-8"


class AdminServer:
    """Serves one node's operational state over HTTP.

    Build with :meth:`start` inside a running event loop. When
    ``registry``/``events`` are not supplied, a private
    :class:`MetricsRegistry` with a :class:`NodeCollector` (RTT hook
    installed) and an :class:`EventStream` registered as a node listener
    are created, so ``AdminServer.start(node)`` is fully wired on its
    own.
    """

    def __init__(
        self,
        node,
        registry: MetricsRegistry,
        events: EventStream,
        degraded_lhm: Optional[int] = None,
    ) -> None:
        self.node = node
        self.registry = registry
        self.events = events
        if degraded_lhm is None:
            degraded_lhm = getattr(node.config, "admin_degraded_lhm", 2)
        #: ``/health`` reports degraded while the LHM score exceeds this.
        self.degraded_lhm = degraded_lhm
        self._server: Optional[asyncio.AbstractServer] = None
        self._address: Optional[str] = None

    @classmethod
    async def start(
        cls,
        node,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
        events: Optional[EventStream] = None,
        degraded_lhm: Optional[int] = None,
    ) -> "AdminServer":
        if registry is None:
            registry = MetricsRegistry()
            collector = NodeCollector(registry, node)
            collector.install_rtt_hook()
            collector.install_sync_hook()
        if events is None:
            events = EventStream()
            node.add_listener(events)
        self = cls(node, registry, events, degraded_lhm)
        self._server = await asyncio.start_server(self._handle, host=host, port=port)
        bound = self._server.sockets[0].getsockname()
        self._address = f"{bound[0]}:{bound[1]}"
        return self

    @property
    def address(self) -> str:
        """``host:port`` the server is bound to."""
        if self._address is None:
            raise RuntimeError("server not started")
        return self._address

    @property
    def url(self) -> str:
        return f"http://{self.address}"

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------------ #

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, content_type, body = await self._respond(reader)
            payload = body.encode("utf-8") if isinstance(body, str) else body
            head = (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n"
                f"\r\n"
            )
            writer.write(head.encode("ascii") + payload)
            await writer.drain()
        except (OSError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def _respond(self, reader: asyncio.StreamReader):
        try:
            request_line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            return self._error("400 Bad Request", "oversized request line")
        if len(request_line) > _MAX_REQUEST_LINE:
            return self._error("400 Bad Request", "oversized request line")
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) != 3:
            return self._error("400 Bad Request", "malformed request line")
        method, target, _version = parts
        # Drain headers (bounded) so well-behaved clients see a clean close.
        seen = 0
        while True:
            line = await reader.readline()
            seen += len(line)
            if line in (b"\r\n", b"\n", b""):
                break
            if seen > _MAX_HEADER_BYTES:
                return self._error("431 Request Header Fields Too Large", "")
        if method != "GET":
            return self._error("405 Method Not Allowed", f"method {method}")
        split = urlsplit(target)
        query = parse_qs(split.query)
        return self._route(split.path, query)

    def _route(self, path: str, query):
        if path == "/metrics":
            return "200 OK", CONTENT_TYPE, render_text(self.registry)
        if path == "/members":
            return self._json(members_payload(self.node))
        if path == "/suspicions":
            return self._json(suspicions_payload(self.node))
        if path == "/info":
            info = node_info(self.node)
            # The chosen (possibly ephemeral) admin binding, so launchers
            # that start members with ``admin_port=0`` can discover the
            # port from the member itself (docs/SOAK.md).
            info["admin"] = {"address": self.address, "url": self.url}
            return self._json(info)
        if path == "/health":
            return self._health()
        if path == "/events":
            return self._events(query)
        return self._error("404 Not Found", f"no such endpoint: {path}")

    def _health(self):
        score = self.node.local_health.score
        degraded = score > self.degraded_lhm
        payload = envelope(
            "health",
            {
                "status": "degraded" if degraded else "ok",
                "lhm": score,
                "degraded_above": self.degraded_lhm,
                "running": self.node.running,
            },
        )
        status = "503 Service Unavailable" if degraded else "200 OK"
        return status, _JSON_TYPE, json.dumps(payload) + "\n"

    def _events(self, query):
        try:
            since = int(query.get("since", ["0"])[0])
            limit_values = query.get("limit")
            limit = int(limit_values[0]) if limit_values else None
        except (TypeError, ValueError):
            return self._error("400 Bad Request", "since/limit must be integers")
        records = self.events.since(since, limit)
        return "200 OK", _JSONL_TYPE, EventStream.to_jsonl(records)

    @staticmethod
    def _json(payload, status: str = "200 OK"):
        return status, _JSON_TYPE, json.dumps(payload, sort_keys=True) + "\n"

    def _error(self, status: str, detail: str):
        payload = envelope("error", {"status": status, "detail": detail})
        return status, _JSON_TYPE, json.dumps(payload) + "\n"
