"""Parameter-sweep driver and the experiment grids.

The paper sweeps a very large space (Tables II/III: 9 C-values, 6
durations, 8 intervals, 10 repetitions, 5 configurations). Reproducing
that literally is thousands of simulator-hours; the default grids here
are reduced but *shape-preserving*: they keep the extremes and the middle
of each dimension so every trend the paper reports (FP growth with C, the
latency/false-positive trade-off, the message-load balance) is exercised.

Environment knobs honoured by :func:`env_scale`:

* ``REPRO_FULL=1`` — use the paper's full grids (very slow).
* ``REPRO_REPS=<n>`` — repetitions per parameter combination.
* ``REPRO_WORKERS=<n>`` — process-pool width for sweeps.
* ``REPRO_N=<n>`` — cluster size override (paper: 128 / 100 for stress).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.harness.interval import IntervalParams, IntervalResult, run_interval
from repro.harness.stress import StressParams, StressResult, run_stress
from repro.harness.threshold import ThresholdParams, ThresholdResult, run_threshold
from repro.metrics.analysis import FalsePositiveStats, percentile_summary

TParams = TypeVar("TParams")
TResult = TypeVar("TResult")

#: Paper Table II / III values (seconds).
FULL_CONCURRENCY = [1, 4, 8, 12, 16, 20, 24, 28, 32]
FULL_DURATIONS = [0.128, 0.512, 2.048, 8.192, 16.384, 32.768]
FULL_INTERVALS = [0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096, 16.384]

#: Reduced, shape-preserving defaults. Durations keep one value below and
#: one above the SWIM suspicion timeout (~10.5 s at n=128). Intervals
#: keep the small-I corner (1 ms / 4 ms — shorter than the time to
#: receive and process an ack, so blocked members' probes keep failing
#: across cycles; this is where the false-positive mass lives) plus one
#: benign value that contributes quiescent message-load balance.
REDUCED_CONCURRENCY = [1, 4, 8, 16, 24, 32]
REDUCED_DURATIONS = [8.192, 32.768]
REDUCED_INTERVALS = [0.001, 0.004, 1.024]
#: Threshold latency measurements need anomalies that outlive the
#: suspicion timeout; shorter durations yield refutations, not failures.
REDUCED_THRESHOLD_DURATIONS = [16.384, 32.768]
REDUCED_THRESHOLD_CONCURRENCY = [4, 16, 32]


@dataclass(frozen=True)
class Scale:
    """Resolved sweep-scale settings."""

    full: bool
    reps: int
    workers: int
    n_members: int
    stress_members: int
    min_test_time: float
    stress_duration: float

    @property
    def concurrency(self) -> List[int]:
        return FULL_CONCURRENCY if self.full else REDUCED_CONCURRENCY

    @property
    def durations(self) -> List[float]:
        return FULL_DURATIONS if self.full else REDUCED_DURATIONS

    @property
    def intervals(self) -> List[float]:
        return FULL_INTERVALS if self.full else REDUCED_INTERVALS

    @property
    def threshold_durations(self) -> List[float]:
        return FULL_DURATIONS if self.full else REDUCED_THRESHOLD_DURATIONS

    @property
    def threshold_concurrency(self) -> List[int]:
        return FULL_CONCURRENCY if self.full else REDUCED_THRESHOLD_CONCURRENCY


def env_scale() -> Scale:
    """Resolve sweep scale from the environment (see module docstring)."""
    full = os.environ.get("REPRO_FULL", "0") == "1"
    reps = int(os.environ.get("REPRO_REPS", "10" if full else "1"))
    workers = int(os.environ.get("REPRO_WORKERS", str(os.cpu_count() or 1)))
    n_members = int(os.environ.get("REPRO_N", "128"))
    stress_members = int(os.environ.get("REPRO_STRESS_N", "100"))
    min_test_time = float(os.environ.get("REPRO_TEST_TIME", "120" if full else "60"))
    stress_duration = float(
        os.environ.get("REPRO_STRESS_TIME", "300" if full else "120")
    )
    return Scale(
        full=full,
        reps=max(1, reps),
        workers=max(1, workers),
        n_members=n_members,
        stress_members=stress_members,
        min_test_time=min_test_time,
        stress_duration=stress_duration,
    )


def run_many(
    runner: Callable[[TParams], TResult],
    params: Sequence[TParams],
    workers: Optional[int] = None,
) -> List[TResult]:
    """Run ``runner`` over every params object, optionally in parallel.

    Results are returned in input order. ``runner`` and every params
    object must be picklable when ``workers > 1``.
    """
    if workers is None:
        workers = env_scale().workers
    if workers <= 1 or len(params) <= 1:
        return [runner(p) for p in params]
    with ProcessPoolExecutor(max_workers=min(workers, len(params))) as pool:
        return list(pool.map(runner, params, chunksize=1))


# --------------------------------------------------------------------- #
# Grid builders
# --------------------------------------------------------------------- #

def interval_grid(
    configuration: str,
    scale: Optional[Scale] = None,
    alpha: float = 5.0,
    beta: float = 6.0,
    concurrency: Optional[Sequence[int]] = None,
) -> List[IntervalParams]:
    """All Interval runs for one configuration (Table III sweep)."""
    scale = scale or env_scale()
    grid: List[IntervalParams] = []
    seed = 0
    for c in (concurrency if concurrency is not None else scale.concurrency):
        for d in scale.durations:
            for i in scale.intervals:
                for rep in range(scale.reps):
                    seed += 1
                    grid.append(
                        IntervalParams(
                            configuration=configuration,
                            n_members=scale.n_members,
                            concurrent=c,
                            duration=d,
                            interval=i,
                            alpha=alpha,
                            beta=beta,
                            min_test_time=scale.min_test_time,
                            seed=seed * 31 + rep,
                        )
                    )
    return grid


def threshold_grid(
    configuration: str,
    scale: Optional[Scale] = None,
    alpha: float = 5.0,
    beta: float = 6.0,
) -> List[ThresholdParams]:
    """All Threshold runs for one configuration (Table II sweep)."""
    scale = scale or env_scale()
    grid: List[ThresholdParams] = []
    seed = 0
    reps = max(scale.reps, 2 if not scale.full else scale.reps)
    for c in scale.threshold_concurrency:
        for d in scale.threshold_durations:
            for rep in range(reps):
                seed += 1
                grid.append(
                    ThresholdParams(
                        configuration=configuration,
                        n_members=scale.n_members,
                        concurrent=c,
                        duration=d,
                        alpha=alpha,
                        beta=beta,
                        seed=seed * 37 + rep,
                    )
                )
    return grid


def stress_grid(
    configuration: str,
    scale: Optional[Scale] = None,
    stressed_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
) -> List[StressParams]:
    """All CPU-exhaustion runs for one configuration (Figure 1 sweep)."""
    scale = scale or env_scale()
    grid: List[StressParams] = []
    seed = 0
    for count in stressed_counts:
        for rep in range(scale.reps):
            seed += 1
            grid.append(
                StressParams(
                    configuration=configuration,
                    n_members=scale.stress_members,
                    n_stressed=count,
                    stress_duration=scale.stress_duration,
                    seed=seed * 41 + rep,
                )
            )
    return grid


#: The alpha/beta combinations examined in Table VII.
TUNING_COMBINATIONS = [
    (2.0, 2.0),
    (2.0, 4.0),
    (2.0, 6.0),
    (4.0, 2.0),
    (4.0, 4.0),
    (4.0, 6.0),
    (5.0, 2.0),
    (5.0, 4.0),
    (5.0, 6.0),
]


# --------------------------------------------------------------------- #
# Aggregation
# --------------------------------------------------------------------- #

@dataclass
class IntervalAggregate:
    """Aggregated Interval results for one configuration (Table IV/VI row)."""

    configuration: str
    fp_events: int
    fp_healthy_events: int
    msgs_sent: int
    bytes_sent: int
    runs: int
    #: Total member-seconds observed (sum of ``n_members * test_time``
    #: over the runs); normalizes message load into a scale-independent
    #: rate for cross-run comparison (the CI regression gate).
    member_seconds: float = 0.0

    @property
    def msgs_per_member_per_sec(self) -> float:
        """Messages per member per virtual second across the sweep."""
        if self.member_seconds <= 0:
            return 0.0
        return self.msgs_sent / self.member_seconds

    @classmethod
    def from_results(
        cls, configuration: str, results: Sequence[IntervalResult]
    ) -> "IntervalAggregate":
        fp = FalsePositiveStats.aggregate(r.false_positives for r in results)
        return cls(
            configuration=configuration,
            fp_events=fp.fp_events,
            fp_healthy_events=fp.fp_healthy_events,
            msgs_sent=sum(r.msgs_sent for r in results),
            bytes_sent=sum(r.bytes_sent for r in results),
            runs=len(results),
            member_seconds=sum(
                r.params.n_members * r.test_time for r in results
            ),
        )


@dataclass
class ThresholdAggregate:
    """Aggregated Threshold latencies for one configuration (Table V row)."""

    configuration: str
    first_detection: Dict[float, Optional[float]]
    full_dissemination: Dict[float, Optional[float]]
    samples: int
    undetected: int

    @classmethod
    def from_results(
        cls, configuration: str, results: Sequence[ThresholdResult]
    ) -> "ThresholdAggregate":
        first: List[float] = []
        full: List[float] = []
        undetected = 0
        for result in results:
            first.extend(result.first_detection)
            full.extend(result.full_dissemination)
            undetected += len(result.latencies.undetected)
        return cls(
            configuration=configuration,
            first_detection=percentile_summary(first),
            full_dissemination=percentile_summary(full),
            samples=len(first),
            undetected=undetected,
        )


def fp_by_concurrency(
    results: Sequence[IntervalResult],
) -> Dict[int, FalsePositiveStats]:
    """Group Interval results by C (Figures 2 and 3 series)."""
    grouped: Dict[int, List[IntervalResult]] = {}
    for result in results:
        grouped.setdefault(result.params.concurrent, []).append(result)
    return {
        c: FalsePositiveStats.aggregate(r.false_positives for r in rs)
        for c, rs in sorted(grouped.items())
    }
