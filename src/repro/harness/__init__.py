"""Experiment harness reproducing the paper's evaluation (Section V).

* :mod:`repro.harness.configurations` — the five test configurations of
  Table I.
* :mod:`repro.harness.threshold` — the Threshold experiment (V-D1):
  one synchronized set of anomalies, measuring detection/dissemination
  latency (Table V).
* :mod:`repro.harness.interval` — the Interval experiment (V-D2): cyclic
  anomalies, measuring false positives (Table IV, Figures 2-3) and
  message load (Table VI).
* :mod:`repro.harness.stress` — the CPU-exhaustion scenario (Figure 1).
* :mod:`repro.harness.schedulers` — probe-scheduling strategy comparison
  (detection latency and false positives per strategy; see
  docs/PROBE_SCHEDULING.md).
* :mod:`repro.harness.sweep` — parameter-sweep driver with optional
  multiprocess fan-out, plus the reduced/full grids.
* :mod:`repro.harness.paper_data` — the numbers printed in the paper,
  for side-by-side comparison.
* :mod:`repro.harness.report` — text renderers for every table/figure.
"""

from repro.harness.configurations import CONFIGURATION_NAMES, make_config
from repro.harness.interval import IntervalParams, IntervalResult, run_interval
from repro.harness.schedulers import (
    SchedulerComparisonParams,
    SchedulerComparisonResult,
    run_scheduler_comparison,
)
from repro.harness.stress import StressParams, StressResult, run_stress
from repro.harness.threshold import ThresholdParams, ThresholdResult, run_threshold

__all__ = [
    "CONFIGURATION_NAMES",
    "IntervalParams",
    "IntervalResult",
    "SchedulerComparisonParams",
    "SchedulerComparisonResult",
    "StressParams",
    "StressResult",
    "ThresholdParams",
    "ThresholdResult",
    "make_config",
    "run_interval",
    "run_scheduler_comparison",
    "run_stress",
    "run_threshold",
]
