"""Probe-scheduling strategy comparison experiment.

Runs the paper's two fault regimes — the Threshold experiment's
synchronized anomaly set (Section V-D1, detection latency) and the
Interval experiment's cyclic anomalies (Section V-D2, false positives) —
once per probe-scheduling strategy, holding every other knob and every
seed constant. The question it answers is the one arXiv:1302.0792 poses:
does spending the same probe budget on likelier-failed targets detect
failures sooner, and does it do so without manufacturing false positives?

Detection-latency samples are pooled across repetitions before the
percentile summary (per-run medians of 4-8 samples are too coarse to
compare strategies), and false positives are summed over the same seeds.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import PROBE_SCHEDULER_NAMES
from repro.harness.interval import IntervalParams, run_interval
from repro.harness.threshold import ThresholdParams, run_threshold
from repro.metrics.analysis import percentile_summary


@dataclass(frozen=True)
class SchedulerComparisonParams:
    """Inputs for one strategy-comparison run."""

    configuration: str = "Lifeguard"
    n_members: int = 128
    #: C: concurrent anomalies per repetition (both regimes).
    concurrent: int = 4
    #: D: anomaly duration for the Threshold (latency) regime, seconds.
    duration: float = 16.384
    #: D and I for the Interval (false-positive) regime, seconds.
    fp_duration: float = 8.192
    fp_interval: float = 0.064
    #: Minimum Interval test time, seconds (paper: 120).
    fp_test_time: float = 120.0
    alpha: float = 5.0
    beta: float = 6.0
    #: Repetitions per strategy; repetition ``r`` uses ``seed + r`` for
    #: every strategy, so the comparison is paired seed for seed.
    reps: int = 3
    seed: int = 0
    schedulers: Tuple[str, ...] = PROBE_SCHEDULER_NAMES

    def __post_init__(self) -> None:
        if self.reps < 1:
            raise ValueError("reps must be >= 1")
        if not self.schedulers:
            raise ValueError("need at least one scheduler")
        for name in self.schedulers:
            if name not in PROBE_SCHEDULER_NAMES:
                raise ValueError(f"unknown probe scheduler {name!r}")


@dataclass
class StrategyOutcome:
    """Aggregated results for one strategy across all repetitions."""

    strategy: str
    #: Pooled anomaly-start -> first-detection latencies, seconds.
    detection_latencies: List[float] = field(default_factory=list)
    #: Anomalies never detected within the Threshold time limit.
    undetected: int = 0
    #: False-positive events over the Interval repetitions (at anomalous
    #: observers and in total — the paper's FP and FP- split).
    fp_events: int = 0
    fp_healthy_events: int = 0
    #: Message load over the Interval repetitions.
    msgs_sent: int = 0
    test_time: float = 0.0

    @property
    def detection_summary(self) -> Dict[float, Optional[float]]:
        return percentile_summary(self.detection_latencies)

    @property
    def detection_p50(self) -> Optional[float]:
        return self.detection_summary.get(50.0)

    def as_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "detection": {
                str(p): v for p, v in self.detection_summary.items()
            },
            "samples": len(self.detection_latencies),
            "undetected": self.undetected,
            "fp_events": self.fp_events,
            "fp_healthy_events": self.fp_healthy_events,
            "msgs_sent": self.msgs_sent,
            "test_time": self.test_time,
        }


@dataclass
class SchedulerComparisonResult:
    params: SchedulerComparisonParams
    outcomes: List[StrategyOutcome] = field(default_factory=list)

    def outcome(self, strategy: str) -> StrategyOutcome:
        for outcome in self.outcomes:
            if outcome.strategy == strategy:
                return outcome
        raise KeyError(strategy)

    def as_dict(self) -> dict:
        return {
            "params": dataclasses.asdict(self.params),
            "outcomes": [outcome.as_dict() for outcome in self.outcomes],
        }


def run_scheduler_comparison(
    params: SchedulerComparisonParams,
) -> SchedulerComparisonResult:
    """Execute both fault regimes under every strategy in ``params``."""
    result = SchedulerComparisonResult(params=params)
    for strategy in params.schedulers:
        outcome = StrategyOutcome(strategy=strategy)
        for rep in range(params.reps):
            seed = params.seed + rep
            threshold = run_threshold(
                ThresholdParams(
                    configuration=params.configuration,
                    n_members=params.n_members,
                    concurrent=params.concurrent,
                    duration=params.duration,
                    alpha=params.alpha,
                    beta=params.beta,
                    seed=seed,
                    probe_scheduler=strategy,
                )
            )
            outcome.detection_latencies.extend(threshold.first_detection)
            outcome.undetected += len(threshold.latencies.undetected)
            interval = run_interval(
                IntervalParams(
                    configuration=params.configuration,
                    n_members=params.n_members,
                    concurrent=params.concurrent,
                    duration=params.fp_duration,
                    interval=params.fp_interval,
                    alpha=params.alpha,
                    beta=params.beta,
                    min_test_time=params.fp_test_time,
                    seed=seed,
                    probe_scheduler=strategy,
                )
            )
            outcome.fp_events += interval.fp_events
            outcome.fp_healthy_events += interval.fp_healthy_events
            outcome.msgs_sent += interval.msgs_sent
            outcome.test_time += interval.test_time
        result.outcomes.append(outcome)
    return result
