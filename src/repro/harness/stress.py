"""The CPU-exhaustion scenario (paper Figure 1 and Section II).

The paper deploys 100 single-core Azure VMs running Consul and runs the
Linux ``stress`` tool (128 CPU-hog processes) on 1..32 of them for five
minutes, counting false positives about *healthy* machines.

Here, CPU exhaustion is modelled by the anomaly controller's stochastic
CPU-stress mode: stressed members alternate between starved (blocked)
bursts and short runnable bursts — the protocol-visible signature of an
agent fighting 128 hogs for one core.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import List

from repro.harness.configurations import make_config
from repro.metrics.analysis import FalsePositiveStats, classify_false_positives
from repro.sim.runtime import SimCluster


@dataclass(frozen=True)
class StressParams:
    """Inputs for one CPU-exhaustion run."""

    configuration: str = "SWIM"
    #: The paper's cluster size for this scenario.
    n_members: int = 100
    #: Number of members running the stress workload (1..32 in Figure 1).
    n_stressed: int = 4
    #: Length of the stress window, seconds (paper: 300).
    stress_duration: float = 300.0
    #: Mean short starved burst length while stressed, seconds.
    mean_blocked: float = 0.8
    #: Mean runnable burst length while stressed, seconds.
    mean_runnable: float = 0.15
    #: Probability that a stall is a long one (throttling/thrash tail).
    long_stall_prob: float = 0.12
    #: Mean long stall length, seconds.
    mean_long_stall: float = 7.0
    alpha: float = 5.0
    beta: float = 6.0
    quiesce: float = 15.0
    #: Extra time after the stress ends during which failure events are
    #: still attributed to the experiment (log-analysis tail).
    tail: float = 10.0
    seed: int = 0
    #: When > 0, run the scenario on a hierarchical zoned cluster with
    #: this many zones (see :mod:`repro.zones`) instead of a flat group.
    zones: int = 0
    #: Worker processes for the zoned driver (only meaningful with
    #: ``zones > 0``); the result is shard-count independent.
    shards: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.n_stressed < self.n_members:
            raise ValueError("need 0 < n_stressed < n_members")
        if self.zones < 0 or self.shards < 1:
            raise ValueError("need zones >= 0 and shards >= 1")
        if self.zones and self.n_members < 2 * self.zones:
            raise ValueError("zoned stress needs n_members >= 2 * zones")


@dataclass
class StressResult:
    """Outputs of one CPU-exhaustion run (the two Figure 1 metrics)."""

    params: StressParams
    stressed: List[str] = field(default_factory=list)
    false_positives: FalsePositiveStats = field(default_factory=FalsePositiveStats)

    @property
    def total_false_positives(self) -> int:
        """Figure 1's 'Total False Positives'."""
        return self.false_positives.fp_events

    @property
    def false_positives_at_healthy(self) -> int:
        """Figure 1's 'False Positives at Healthy Members'."""
        return self.false_positives.fp_healthy_events

    def as_dict(self) -> dict:
        """JSON-safe summary (shared schema with the ops plane; see
        :mod:`repro.ops.schema`)."""
        return {
            "params": dataclasses.asdict(self.params),
            "stressed": sorted(self.stressed),
            "total_false_positives": self.total_false_positives,
            "false_positives_at_healthy": self.false_positives_at_healthy,
        }


def _run_stress_zoned(params: StressParams) -> StressResult:
    """The CPU-exhaustion scenario on a hierarchical zoned cluster.

    Mirrors the flat run exactly — same picker and per-member burst
    seeds — but drives a :class:`~repro.zones.cluster.ZonedCluster`
    through the sharded driver, which replays the identical trace for
    any shard count. False positives are classified over the serialized
    member events every zone ships back.
    """
    from repro.swim.events import EventKind, MemberEvent
    from repro.zones.sharded import StressWindow, run_zoned
    from repro.zones.topology import build_layout

    config = make_config(params.configuration, params.alpha, params.beta)
    config = config.replace(zone_count=params.zones)
    layout = build_layout(
        params.n_members, params.zones, config.bridges_per_zone
    )
    names = list(layout.roster())
    picker = random.Random(params.seed * 2_147_483_629 + 17)
    stressed = picker.sample(names, params.n_stressed)
    start = params.quiesce
    windows = tuple(
        StressWindow(
            member=member,
            start=start,
            duration=params.stress_duration,
            burst_seed=params.seed * 7_368_787 + index * 104_729 + 3,
            mean_blocked=params.mean_blocked,
            mean_runnable=params.mean_runnable,
            long_stall_prob=params.long_stall_prob,
            mean_long_stall=params.mean_long_stall,
        )
        for index, member in enumerate(stressed)
    )
    end = start + params.stress_duration
    result = run_zoned(
        params.n_members,
        config,
        seed=params.seed,
        zone_count=params.zones,
        duration=end + params.tail,
        shards=params.shards,
        stress_windows=windows,
        return_events=True,
    )
    events = [
        MemberEvent(time, observer, subject, EventKind[kind], incarnation)
        for time, observer, subject, kind, incarnation in result.member_events
    ]
    stats = classify_false_positives(
        events, set(stressed), since=start, until=end + params.tail
    )
    return StressResult(
        params=params, stressed=list(stressed), false_positives=stats
    )


def run_stress(params: StressParams) -> StressResult:
    """Execute one CPU-exhaustion experiment in the simulator."""
    if params.zones:
        return _run_stress_zoned(params)
    config = make_config(params.configuration, params.alpha, params.beta)
    cluster = SimCluster(
        n_members=params.n_members, config=config, seed=params.seed
    )
    cluster.start()
    cluster.run_for(params.quiesce)

    picker = random.Random(params.seed * 2_147_483_629 + 17)
    stressed = picker.sample(cluster.names, params.n_stressed)
    start = cluster.now
    for index, member in enumerate(stressed):
        burst_rng = random.Random(params.seed * 7_368_787 + index * 104_729 + 3)
        cluster.anomalies.cpu_stress(
            member,
            start,
            params.stress_duration,
            burst_rng,
            mean_blocked=params.mean_blocked,
            mean_runnable=params.mean_runnable,
            long_stall_prob=params.long_stall_prob,
            mean_long_stall=params.mean_long_stall,
        )

    end = start + params.stress_duration
    cluster.run_until(end + params.tail)
    stats = classify_false_positives(
        cluster.event_log.events, set(stressed), since=start, until=end + params.tail
    )
    return StressResult(params=params, stressed=list(stressed), false_positives=stats)
