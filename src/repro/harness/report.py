"""Text renderers: print each paper table/figure with measured values
next to the paper's published values.

The renderers never assert anything — they are the human-readable output
of the benchmark harness. Shape assertions live in the benchmark tests
themselves.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.harness import paper_data
from repro.harness.sweep import IntervalAggregate, ThresholdAggregate
from repro.metrics.analysis import FalsePositiveStats, ratio_pct


def _fmt(value: Optional[float], spec: str = "10.2f") -> str:
    if value is None:
        return " " * (int(spec.split(".")[0]) - 3) + "n/a"
    return format(value, spec)


def _pct_of(value: float, baseline: float) -> str:
    pct = ratio_pct(value, baseline)
    return _fmt(pct, "8.2f")


def render_table_iv(aggregates: Sequence[IntervalAggregate]) -> str:
    """Table IV: aggregated false positives per configuration."""
    by_name = {a.configuration: a for a in aggregates}
    swim = by_name.get("SWIM")
    lines = [
        "TABLE IV — Aggregated false positives (alpha=5, beta=6)",
        f"{'Configuration':14s} {'FP':>8s} {'FP-':>6s} {'FP %SWIM':>9s} "
        f"{'FP- %SWIM':>10s} | {'paper FP':>9s} {'paper FP-':>9s} "
        f"{'paper FP%':>9s} {'paper FP-%':>10s}",
    ]
    for name, (p_fp, p_fpm, p_fp_pct, p_fpm_pct) in paper_data.TABLE_IV.items():
        agg = by_name.get(name)
        if agg is None:
            continue
        fp_pct = _pct_of(agg.fp_events, swim.fp_events) if swim else "     n/a"
        fpm_pct = (
            _pct_of(agg.fp_healthy_events, swim.fp_healthy_events)
            if swim and swim.fp_healthy_events
            else "     n/a"
        )
        lines.append(
            f"{name:14s} {agg.fp_events:8d} {agg.fp_healthy_events:6d} "
            f"{fp_pct:>9s} {fpm_pct:>10s} | {p_fp:9d} {p_fpm:9d} "
            f"{p_fp_pct:9.2f} {p_fpm_pct:10.2f}"
        )
    return "\n".join(lines)


def render_table_v(aggregates: Sequence[ThresholdAggregate]) -> str:
    """Table V: detection and dissemination latencies (seconds)."""
    by_name = {a.configuration: a for a in aggregates}
    lines = [
        "TABLE V — First-detection / full-dissemination latency (s)",
        f"{'Configuration':14s} {'med 1st':>8s} {'99% 1st':>8s} {'99.9%':>8s} "
        f"{'med full':>9s} {'99% full':>9s} {'99.9%':>8s} | paper med/99/99.9 "
        f"(1st) med/99/99.9 (full)",
    ]
    for name, paper in paper_data.TABLE_V.items():
        agg = by_name.get(name)
        if agg is None:
            continue
        first = agg.first_detection
        full = agg.full_dissemination
        lines.append(
            f"{name:14s} {_fmt(first.get(50.0), '8.2f')} "
            f"{_fmt(first.get(99.0), '8.2f')} {_fmt(first.get(99.9), '8.2f')} "
            f"{_fmt(full.get(50.0), '9.2f')} {_fmt(full.get(99.0), '9.2f')} "
            f"{_fmt(full.get(99.9), '8.2f')} | "
            f"{paper[0]:.2f}/{paper[1]:.2f}/{paper[2]:.2f}  "
            f"{paper[3]:.2f}/{paper[4]:.2f}/{paper[5]:.2f}"
        )
    return "\n".join(lines)


def render_table_vi(aggregates: Sequence[IntervalAggregate]) -> str:
    """Table VI: message load per configuration."""
    by_name = {a.configuration: a for a in aggregates}
    swim = by_name.get("SWIM")
    lines = [
        "TABLE VI — Message load (alpha=5, beta=6)",
        f"{'Configuration':14s} {'Msgs':>10s} {'MiB':>9s} {'Msgs %SWIM':>11s} "
        f"{'Bytes %SWIM':>12s} | {'paper Msgs%':>11s} {'paper Bytes%':>12s}",
    ]
    for name, (p_msgs, p_bytes, p_msgs_pct, p_bytes_pct) in paper_data.TABLE_VI.items():
        agg = by_name.get(name)
        if agg is None:
            continue
        msgs_pct = _pct_of(agg.msgs_sent, swim.msgs_sent) if swim else "     n/a"
        bytes_pct = _pct_of(agg.bytes_sent, swim.bytes_sent) if swim else "     n/a"
        lines.append(
            f"{name:14s} {agg.msgs_sent:10d} {agg.bytes_sent / 2**20:9.1f} "
            f"{msgs_pct:>11s} {bytes_pct:>12s} | {p_msgs_pct:11.2f} "
            f"{p_bytes_pct:12.2f}"
        )
    return "\n".join(lines)


def render_table_vii(
    rows: Mapping[tuple, Mapping[str, Optional[float]]]
) -> str:
    """Table VII: Lifeguard tuning metrics as % of the SWIM baseline.

    ``rows`` maps ``(alpha, beta)`` to a metric dict with the same keys
    as :data:`repro.harness.paper_data.TABLE_VII`.
    """
    metrics = [
        ("med_first", "Med First"),
        ("med_full", "Med Full"),
        ("p99_first", "99% First"),
        ("p99_full", "99% Full"),
        ("p999_first", "99.9% First"),
        ("p999_full", "99.9% Full"),
        ("fp", "FP"),
        ("fp_healthy", "FP-"),
    ]
    combos = list(paper_data.TABLE_VII)
    header = f"{'metric':12s}" + "".join(
        f"  a={int(a)},b={int(b)}" for a, b in combos
    )
    lines = [
        "TABLE VII — Lifeguard tuning, metrics as % of SWIM baseline",
        "(first line: measured; second line: paper)",
        header,
    ]
    for key, label in metrics:
        measured = f"{label:12s}"
        paper_line = f"{'  (paper)':12s}"
        for combo in combos:
            row = rows.get(combo, {})
            measured += f" {_fmt(row.get(key), '8.1f')}"
            paper_line += f" {paper_data.TABLE_VII[combo][key]:8.1f}"
        lines.append(measured)
        lines.append(paper_line)
    return "\n".join(lines)


def render_fp_by_concurrency(
    series: Mapping[str, Mapping[int, FalsePositiveStats]],
    healthy_only: bool = False,
) -> str:
    """Figures 2/3: FP (or FP-) versus number of concurrent anomalies."""
    which = "FP- (at healthy members)" if healthy_only else "total FP"
    title = "FIGURE 3" if healthy_only else "FIGURE 2"
    concurrencies: List[int] = sorted(
        {c for per_config in series.values() for c in per_config}
    )
    lines = [
        f"{title} — {which} vs concurrent anomalies",
        f"{'Configuration':14s}" + "".join(f" C={c:<6d}" for c in concurrencies),
    ]
    for name, per_config in series.items():
        row = f"{name:14s}"
        for c in concurrencies:
            stats = per_config.get(c)
            if stats is None:
                row += "     n/a"
            else:
                value = stats.fp_healthy_events if healthy_only else stats.fp_events
                row += f" {value:7d}"
        lines.append(row)
    return "\n".join(lines)


def render_figure_1(
    rows: Mapping[int, Dict[str, int]],
) -> str:
    """Figure 1: CPU-exhaustion false positives.

    ``rows`` maps stressed-machine count to a dict with keys
    ``swim_fp``, ``swim_fp_healthy``, ``lifeguard_fp``,
    ``lifeguard_fp_healthy``.
    """
    lines = [
        "FIGURE 1 — False positives from CPU exhaustion "
        "(100 members, stress on N)",
        f"{'N':>4s} {'SWIM FP':>9s} {'SWIM FP-':>9s} {'LG FP':>7s} "
        f"{'LG FP-':>7s} | paper(approx): SWIM FP / FP-, LG FP / FP-",
    ]
    for n, row in sorted(rows.items()):
        paper = paper_data.FIGURE_1_APPROX.get(n)
        paper_txt = (
            f"{paper[0]} / {paper[1]}, {paper[2]} / {paper[3]}"
            if paper
            else "-"
        )
        lines.append(
            f"{n:4d} {row['swim_fp']:9d} {row['swim_fp_healthy']:9d} "
            f"{row['lifeguard_fp']:7d} {row['lifeguard_fp_healthy']:7d} | "
            f"{paper_txt}"
        )
    return "\n".join(lines)
