"""The five test configurations (Table I of the paper).

============== =======================================
Configuration  Description
============== =======================================
SWIM           Regular SWIM
LHA-Probe      SWIM + Local Health Aware Probe
LHA-Suspicion  SWIM + Local Health Aware Suspicion
Buddy System   SWIM + Buddy System
Lifeguard      All Lifeguard components enabled
============== =======================================

The suspicion timeout tuning ``alpha`` / ``beta`` applies to
configurations with LHA-Suspicion enabled; all others use SWIM's fixed
timeout, which is equivalent to ``alpha = 5, beta = 1`` (Section V-C).
"""

from __future__ import annotations

from typing import Dict

from repro.config import LifeguardFlags, SwimConfig

#: Component switches per configuration, exactly as in Table I.
CONFIGURATION_FLAGS: Dict[str, LifeguardFlags] = {
    "SWIM": LifeguardFlags(),
    "LHA-Probe": LifeguardFlags(lha_probe=True),
    "LHA-Suspicion": LifeguardFlags(lha_suspicion=True),
    "Buddy System": LifeguardFlags(buddy_system=True),
    "Lifeguard": LifeguardFlags(lha_probe=True, lha_suspicion=True, buddy_system=True),
}

#: Table I order, used by every results table.
CONFIGURATION_NAMES = list(CONFIGURATION_FLAGS)


def make_config(
    name: str, alpha: float = 5.0, beta: float = 6.0, **overrides: object
) -> SwimConfig:
    """Build the :class:`SwimConfig` for a named test configuration.

    ``alpha``/``beta`` tune LHA-Suspicion's timeout bounds; they are
    ignored (the protocol node falls back to the fixed timeout) for
    configurations where LHA-Suspicion is disabled.
    """
    try:
        flags = CONFIGURATION_FLAGS[name]
    except KeyError:
        known = ", ".join(CONFIGURATION_NAMES)
        raise ValueError(f"unknown configuration {name!r}; expected one of: {known}")
    params: dict = dict(suspicion_alpha=alpha, suspicion_beta=beta, flags=flags)
    params.update(overrides)
    return SwimConfig(**params)
