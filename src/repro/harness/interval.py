"""The Interval experiment (paper Section V-D2).

Anomalies are introduced *cyclically*: ``C`` members block for duration
``D``, run normally for interval ``I``, and repeat in rotation until at
least 120 seconds have passed; the test ends at the end of the next
anomalous period. This models real-world intermittent slowness (CPU or
network delays where processes make progress in small bursts) and is used
to measure false positives (Table IV, Figures 2-3) and message load
(Table VI).
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import List

from repro.harness.configurations import make_config
from repro.metrics.analysis import FalsePositiveStats, classify_false_positives
from repro.sim.runtime import SimCluster


@dataclass(frozen=True)
class IntervalParams:
    """Inputs for one Interval run (paper Table III sweeps C, D and I)."""

    configuration: str = "SWIM"
    n_members: int = 128
    #: C: number of concurrent anomalies.
    concurrent: int = 4
    #: D: duration of each anomalous period, seconds.
    duration: float = 8.192
    #: I: normal-operation interval between anomalous periods, seconds.
    interval: float = 0.064
    alpha: float = 5.0
    beta: float = 6.0
    quiesce: float = 15.0
    #: Cycles repeat until at least this much time has passed (paper: 120 s).
    min_test_time: float = 120.0
    seed: int = 0
    #: Probe-target scheduling strategy (see docs/PROBE_SCHEDULING.md).
    probe_scheduler: str = "round-robin"

    def __post_init__(self) -> None:
        if not 0 < self.concurrent < self.n_members:
            raise ValueError("need 0 < concurrent < n_members")
        if self.duration <= 0 or self.interval <= 0:
            raise ValueError("duration and interval must be positive")


@dataclass
class IntervalResult:
    """Outputs of one Interval run."""

    params: IntervalParams
    anomalous: List[str] = field(default_factory=list)
    false_positives: FalsePositiveStats = field(default_factory=FalsePositiveStats)
    #: Messages sent by all members during the test (compound = 1).
    msgs_sent: int = 0
    #: Bytes sent by all members during the test.
    bytes_sent: int = 0
    #: Virtual duration of the measured window (for rate computations).
    test_time: float = 0.0

    @property
    def fp_events(self) -> int:
        return self.false_positives.fp_events

    @property
    def fp_healthy_events(self) -> int:
        return self.false_positives.fp_healthy_events

    def as_dict(self) -> dict:
        """JSON-safe summary (shared schema with the ops plane; see
        :mod:`repro.ops.schema`)."""
        return {
            "params": dataclasses.asdict(self.params),
            "anomalous": sorted(self.anomalous),
            "fp_events": self.fp_events,
            "fp_healthy_events": self.fp_healthy_events,
            "msgs_sent": self.msgs_sent,
            "bytes_sent": self.bytes_sent,
            "test_time": self.test_time,
        }


def run_interval(params: IntervalParams) -> IntervalResult:
    """Execute one Interval experiment in the simulator."""
    config = make_config(
        params.configuration,
        params.alpha,
        params.beta,
        probe_scheduler=params.probe_scheduler,
    )
    cluster = SimCluster(
        n_members=params.n_members, config=config, seed=params.seed
    )
    cluster.start()
    cluster.run_for(params.quiesce)

    picker = random.Random(params.seed * 2_147_483_629 + 13)
    anomalous = picker.sample(cluster.names, params.concurrent)
    start = cluster.now
    end = cluster.anomalies.cyclic_windows(
        anomalous,
        first_start=start,
        duration=params.duration,
        interval=params.interval,
        until=start + params.min_test_time,
    )

    before = cluster.telemetry()
    msgs_before, bytes_before = before.msgs_sent, before.bytes_sent
    cluster.run_until(end)
    after = cluster.telemetry()

    stats = classify_false_positives(
        cluster.event_log.events, set(anomalous), since=start, until=end
    )
    return IntervalResult(
        params=params,
        anomalous=list(anomalous),
        false_positives=stats,
        msgs_sent=after.msgs_sent - msgs_before,
        bytes_sent=after.bytes_sent - bytes_before,
        test_time=end - start,
    )
