"""The numbers reported in the paper, for side-by-side comparison.

Exact values are transcribed from the tables; Figure 1/2/3 values are
read off the published (log-scale) plots and are therefore approximate —
they capture the order of magnitude and the trend, which is what a
reproduction on a different substrate can meaningfully be compared to.
"""

from __future__ import annotations

#: Table IV — aggregated false positives, alpha=5, beta=6.
#: configuration -> (FP events, FP- events, FP % SWIM, FP- % SWIM)
TABLE_IV = {
    "SWIM": (339002, 1326, 100.00, 100.00),
    "LHA-Probe": (229574, 436, 67.72, 32.88),
    "LHA-Suspicion": (10174, 89, 3.00, 6.71),
    "Buddy System": (318935, 591, 94.08, 44.57),
    "Lifeguard": (5193, 25, 1.53, 1.89),
}

#: Table V — detection/dissemination latency in seconds, alpha=5, beta=6.
#: configuration -> (med 1st, 99% 1st, 99.9% 1st, med full, 99% full, 99.9% full)
TABLE_V = {
    "SWIM": (12.44, 16.96, 19.40, 12.90, 16.93, 20.17),
    "LHA-Probe": (12.42, 17.75, 20.10, 12.90, 17.98, 20.56),
    "LHA-Suspicion": (12.42, 17.47, 25.41, 12.89, 17.33, 23.80),
    "Buddy System": (12.45, 17.12, 19.16, 12.92, 17.18, 19.81),
    "Lifeguard": (12.45, 17.90, 21.20, 12.91, 18.05, 21.68),
}

#: Table VI — message load, alpha=5, beta=6.
#: configuration -> (msgs sent in millions, bytes sent GiB, msgs % SWIM, bytes % SWIM)
TABLE_VI = {
    "SWIM": (435.33, 149.15, 100.00, 100.00),
    "LHA-Probe": (428.62, 134.28, 98.46, 90.03),
    "LHA-Suspicion": (484.55, 158.87, 111.31, 106.52),
    "Buddy System": (435.62, 147.67, 100.07, 99.01),
    "Lifeguard": (481.42, 146.13, 110.59, 97.97),
}

#: Table VII — full Lifeguard at each (alpha, beta), as % of the SWIM
#: baseline. (alpha, beta) -> {metric: percent}
TABLE_VII = {
    (2, 2): {"med_first": 53.14, "med_full": 55.12, "p99_first": 69.81,
             "p99_full": 73.07, "p999_first": 76.08, "p999_full": 76.20,
             "fp": 98.37, "fp_healthy": 31.15},
    (2, 4): {"med_first": 54.10, "med_full": 56.28, "p99_first": 72.88,
             "p99_full": 76.96, "p999_first": 75.41, "p999_full": 75.11,
             "fp": 43.64, "fp_healthy": 22.47},
    (2, 6): {"med_first": 54.34, "med_full": 56.74, "p99_first": 75.53,
             "p99_full": 79.15, "p999_first": 80.36, "p999_full": 78.58,
             "fp": 24.16, "fp_healthy": 13.65},
    (4, 2): {"med_first": 82.96, "med_full": 84.42, "p99_first": 94.28,
             "p99_full": 97.05, "p999_first": 99.07, "p999_full": 92.17,
             "fp": 37.72, "fp_healthy": 20.29},
    (4, 4): {"med_first": 83.04, "med_full": 84.03, "p99_first": 96.17,
             "p99_full": 96.69, "p999_first": 93.71, "p999_full": 95.14,
             "fp": 8.04, "fp_healthy": 9.50},
    (4, 6): {"med_first": 83.12, "med_full": 84.42, "p99_first": 96.82,
             "p99_full": 96.52, "p999_first": 94.69, "p999_full": 92.71,
             "fp": 3.18, "fp_healthy": 4.83},
    (5, 2): {"med_first": 99.76, "med_full": 99.92, "p99_first": 104.95,
             "p99_full": 105.73, "p999_first": 112.32, "p999_full": 107.64,
             "fp": 26.61, "fp_healthy": 15.38},
    (5, 4): {"med_first": 99.52, "med_full": 99.61, "p99_first": 102.71,
             "p99_full": 105.08, "p999_first": 111.44, "p999_full": 107.93,
             "fp": 5.43, "fp_healthy": 5.05},
    (5, 6): {"med_first": 100.08, "med_full": 100.08, "p99_first": 105.54,
             "p99_full": 106.62, "p999_first": 109.28, "p999_full": 107.49,
             "fp": 1.53, "fp_healthy": 1.89},
}

#: Figure 1 (approximate, read off the plot) — CPU exhaustion scenario.
#: stressed machines -> (SWIM total FP, SWIM FP at healthy,
#:                       Lifeguard total FP, Lifeguard FP at healthy)
FIGURE_1_APPROX = {
    1: (30, 0, 0, 0),
    4: (600, 200, 0, 0),
    8: (1500, 500, 0, 0),
    16: (3000, 900, 10, 0),
    32: (6000, 1500, 50, 5),
}

#: Figures 2/3 (qualitative): at every concurrency level, full Lifeguard
#: reduces total FP by 50-100x and FP at healthy members by 10-100x.
FIGURE_2_REDUCTION_RANGE = (50.0, 100.0)
FIGURE_3_REDUCTION_RANGE = (10.0, 100.0)

#: Headline claims (Section VII) a reproduction should preserve.
HEADLINES = [
    "Full Lifeguard cuts total false positives to ~1.5% of SWIM (>50x).",
    "Full Lifeguard cuts false positives at healthy members to ~1.9% of SWIM.",
    "LHA-Suspicion is the largest single contributor to FP reduction.",
    "Buddy System halves FP at healthy members but barely moves total FP.",
    "Median detection/dissemination latency is essentially unchanged.",
    "99/99.9th percentile latencies rise only modestly (~6-9%).",
    "Messages sent rise ~11%; bytes sent fall slightly (~2%).",
    "alpha=2, beta=2 trades: median latency -45%, FP- still -68% vs SWIM.",
]
