"""The Threshold experiment (paper Section V-D1).

One synchronized set of ``C`` anomalies of duration ``D`` is introduced
after a quiesce period; the experiment measures the latency from anomaly
start to first detection and to full dissemination (Table V), then runs
on until the group converges back to all-healthy or a timeout passes.

The paper's setup: 128 agents in one VM over loopback, 15 s quiesce,
anomalies synchronized by the system clock ("the worst case of C fully
correlated anomalies, such as from power loss to a rack"), 120 s cap.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.harness.configurations import make_config
from repro.metrics.analysis import (
    DisseminationStats,
    detection_latencies,
    percentile_summary,
)
from repro.sim.runtime import SimCluster


@dataclass(frozen=True)
class ThresholdParams:
    """Inputs for one Threshold run (paper Table II sweeps C and D)."""

    configuration: str = "SWIM"
    n_members: int = 128
    #: C: number of concurrent anomalies.
    concurrent: int = 4
    #: D: duration of each anomaly, seconds (paper: 0.128 .. 32.768).
    duration: float = 16.384
    alpha: float = 5.0
    beta: float = 6.0
    quiesce: float = 15.0
    #: Experiment cap, from the start of the anomaly (paper: 120 s).
    time_limit: float = 120.0
    seed: int = 0
    #: Probe-target scheduling strategy (see docs/PROBE_SCHEDULING.md).
    probe_scheduler: str = "round-robin"

    def __post_init__(self) -> None:
        if not 0 < self.concurrent < self.n_members:
            raise ValueError("need 0 < concurrent < n_members")
        if self.duration <= 0:
            raise ValueError("duration must be positive")


@dataclass
class ThresholdResult:
    """Outputs of one Threshold run."""

    params: ThresholdParams
    #: Names of the members that had anomalies.
    anomalous: List[str] = field(default_factory=list)
    #: Latency stats over the anomalous members.
    latencies: DisseminationStats = field(default_factory=DisseminationStats)
    #: Whether the whole group saw each other healthy again in time.
    recovered: bool = False
    #: Virtual time from anomaly start to full recovery (None if not).
    recovery_time: Optional[float] = None

    @property
    def first_detection(self) -> List[float]:
        return self.latencies.first_detection_values

    @property
    def full_dissemination(self) -> List[float]:
        return self.latencies.full_dissemination_values

    def as_dict(self) -> dict:
        """JSON-safe summary (shared schema with the ops plane; see
        :mod:`repro.ops.schema`)."""
        return {
            "params": dataclasses.asdict(self.params),
            "anomalous": sorted(self.anomalous),
            "first_detection": {
                str(p): v for p, v in percentile_summary(self.first_detection).items()
            },
            "full_dissemination": {
                str(p): v
                for p, v in percentile_summary(self.full_dissemination).items()
            },
            "undetected": len(self.latencies.undetected),
            "recovered": self.recovered,
            "recovery_time": self.recovery_time,
        }


def run_threshold(params: ThresholdParams) -> ThresholdResult:
    """Execute one Threshold experiment in the simulator."""
    config = make_config(
        params.configuration,
        params.alpha,
        params.beta,
        probe_scheduler=params.probe_scheduler,
    )
    cluster = SimCluster(
        n_members=params.n_members, config=config, seed=params.seed
    )
    cluster.start()
    cluster.run_for(params.quiesce)

    picker = random.Random(params.seed * 2_147_483_629 + 11)
    anomalous = picker.sample(cluster.names, params.concurrent)
    start = cluster.now
    cluster.anomalies.block_windows(anomalous, start, start + params.duration)

    deadline = start + params.time_limit
    # Convergence is only meaningful once the anomaly has ended (the group
    # is trivially converged before any damage is done).
    cluster.run_until(min(start + params.duration, deadline))
    recovered = cluster.run_until_converged(deadline, check_interval=1.0)
    recovery_time = cluster.now - start if recovered else None
    # Keep running to the cap so late failure events (relevant for the
    # 99.9th percentile) are captured even after recovery.
    if cluster.now < deadline:
        cluster.run_until(deadline)

    latencies = detection_latencies(
        cluster.event_log.events, set(anomalous), start, cluster.names
    )
    return ThresholdResult(
        params=params,
        anomalous=list(anomalous),
        latencies=latencies,
        recovered=recovered,
        recovery_time=recovery_time,
    )
