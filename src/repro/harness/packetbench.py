"""Loopback UDP echo throughput harness for the transport backends.

One client and one echo server on localhost, raw datagrams (no SWIM
protocol on top): the client keeps a fixed window of packets in flight
and counts completed round trips for a wall-clock duration. This
isolates exactly what the backend controls — syscall count, event-loop
wakeups, per-packet allocation — which is why the same harness backs
both ``python -m repro packetbench`` and
``benchmarks/bench_packet_path.py`` (whose ``packet_path.json`` output
is regression-gated).

UDP loopback may drop under pressure; a refill task tops the window
back up, so a burst of losses costs throughput but never stalls the
run. Reported ``msgs_per_sec`` counts both directions of completed
round trips (the conservative measure: a dropped packet contributes
nothing).

**Isolation.** ``isolate=True`` runs every rep in a fresh Python
subprocess (pyperf-style). This matters more than it sounds: the stock
asyncio datagram path allocates a 256 KiB buffer per ``recvfrom``, and
whether glibc serves those from a warm heap or from fresh ``mmap``
pages (64 page faults each) depends on the *allocator history of the
host process* — the same benchmark can read 3x faster inside a pytest
run than from a fresh interpreter. A fresh subprocess per rep pins the
measurement to the reproducible fresh-process regime; the batched
backend is indifferent either way because its buffers are preallocated
once. See docs/PERFORMANCE.md for the numbers.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.config import TRANSPORT_BACKEND_NAMES, SwimConfig
from repro.transport.fastudp import create_udp_transport, uvloop_available


def _new_loop(backend: str) -> asyncio.AbstractEventLoop:
    if backend == "uvloop":
        if not uvloop_available():
            raise RuntimeError(
                "backend 'uvloop' requires the optional uvloop package, "
                "which is not installed"
            )
        import uvloop

        return uvloop.new_event_loop()
    return asyncio.new_event_loop()


async def _echo_round(
    backend: str,
    duration: float,
    payload_size: int,
    batch_size: int,
    window: int,
) -> Dict[str, object]:
    config = SwimConfig(
        transport_backend=backend, transport_batch_size=batch_size
    )
    server = await create_udp_transport(config=config)
    client = await create_udp_transport(config=config)
    loop = asyncio.get_running_loop()
    payload = bytes(payload_size)
    counts = {"tx": 0, "rx": 0}
    done: asyncio.Future = loop.create_future()
    deadline = loop.time() + duration
    server_addr = server.local_address

    def on_server(data, source, reliable):
        # data may be a memoryview into a reused receive slot; both
        # backends' send paths copy (or consume) it synchronously.
        server.send(source, data)

    def on_client(data, source, reliable):
        counts["rx"] += 1
        if loop.time() < deadline:
            client.send(server_addr, payload)
            counts["tx"] += 1
        elif not done.done():
            done.set_result(None)

    server.bind(on_server)
    client.bind(on_client)

    async def refill():
        # Losses shrink the in-flight window; top it back up every tick
        # so the run measures throughput, not stall recovery.
        while not done.done():
            await asyncio.sleep(0.05)
            if loop.time() >= deadline:
                if not done.done():
                    done.set_result(None)
                return
            for _ in range(window - (counts["tx"] - counts["rx"])):
                client.send(server_addr, payload)
                counts["tx"] += 1

    start = loop.time()
    for _ in range(window):
        client.send(server_addr, payload)
        counts["tx"] += 1
    refill_task = loop.create_task(refill())
    try:
        await asyncio.wait_for(done, duration + 5.0)
    finally:
        refill_task.cancel()
        elapsed = max(loop.time() - start, 1e-9)
        await client.close()
        await server.close()

    stats = client.stats
    send_calls = stats.get("udp_send_syscalls")
    recv_calls = stats.get("udp_recv_syscalls")
    sent_dgrams = sum(
        size * n for (d, size), n in stats.batches.items() if d == "send"
    )
    recv_dgrams = sum(
        size * n for (d, size), n in stats.batches.items() if d == "recv"
    )
    round_trips = counts["rx"]
    return {
        "backend": backend,
        "uses_mmsg": bool(getattr(getattr(client, "pump", None), "uses_mmsg", False)),
        "duration": duration,
        "elapsed": elapsed,
        "payload_size": payload_size,
        "batch_size": batch_size,
        "window": window,
        "sent": counts["tx"],
        "round_trips": round_trips,
        "loss": counts["tx"] - round_trips,
        "msgs_per_sec": (round_trips * 2) / elapsed,
        "client_send_syscalls": send_calls,
        "client_recv_syscalls": recv_calls,
        "avg_send_batch": sent_dgrams / send_calls if send_calls else 0.0,
        "avg_recv_batch": recv_dgrams / recv_calls if recv_calls else 0.0,
    }


def _run_one_isolated(
    backend: str,
    duration: float,
    payload_size: int,
    batch_size: int,
    window: int,
) -> Dict[str, object]:
    """One rep in a fresh interpreter; returns its parsed JSON result."""
    program = (
        "import json, sys\n"
        "from repro.harness.packetbench import run_packet_bench\n"
        "r = run_packet_bench(*json.loads(sys.argv[1]))\n"
        "print(json.dumps(r))\n"
    )
    params = json.dumps(
        [backend, duration, payload_size, batch_size, window, 1, False]
    )
    env = dict(os.environ)
    pkg_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        pkg_root if not existing else pkg_root + os.pathsep + existing
    )
    proc = subprocess.run(
        [sys.executable, "-c", program, params],
        capture_output=True,
        text=True,
        env=env,
        timeout=duration * 4 + 60,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"isolated packetbench rep failed (backend={backend}): "
            f"{proc.stderr.strip().splitlines()[-1] if proc.stderr.strip() else proc.returncode}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def run_packet_bench(
    backend: str = "asyncio",
    duration: float = 1.0,
    payload_size: int = 64,
    batch_size: int = 32,
    window: int = 256,
    reps: int = 1,
    isolate: bool = False,
) -> Dict[str, object]:
    """Run the loopback echo benchmark; best-of-``reps`` throughput.

    Creates its own event loop (a uvloop one for ``backend="uvloop"``),
    so it must be called from synchronous code. With ``isolate=True``
    each rep runs in a fresh interpreter subprocess instead (see the
    module docstring for why the host process's heap history would
    otherwise skew the stock-asyncio baseline).
    """
    if backend not in TRANSPORT_BACKEND_NAMES:
        known = ", ".join(TRANSPORT_BACKEND_NAMES)
        raise ValueError(f"backend must be one of: {known}")
    if backend == "uvloop" and not uvloop_available():
        # Fail here, not in the subprocess, for the clear error message.
        _new_loop(backend)
    best: Optional[Dict[str, object]] = None
    for _ in range(max(1, reps)):
        if isolate:
            result = _run_one_isolated(
                backend, duration, payload_size, batch_size, window
            )
        else:
            loop = _new_loop(backend)
            try:
                result = loop.run_until_complete(
                    _echo_round(
                        backend, duration, payload_size, batch_size, window
                    )
                )
            finally:
                loop.close()
        if best is None or result["msgs_per_sec"] > best["msgs_per_sec"]:
            best = result
    assert best is not None
    best["reps"] = max(1, reps)
    best["isolated"] = isolate
    return best


def run_packet_bench_suite(
    backends: List[str],
    duration: float = 1.0,
    payload_size: int = 64,
    batch_size: int = 32,
    window: int = 256,
    reps: int = 1,
    isolate: bool = False,
) -> Dict[str, Dict[str, object]]:
    """Run :func:`run_packet_bench` per backend, keyed by backend name."""
    return {
        backend: run_packet_bench(
            backend,
            duration=duration,
            payload_size=payload_size,
            batch_size=batch_size,
            window=window,
            reps=reps,
            isolate=isolate,
        )
        for backend in backends
    }
