"""Staging policy for the reliable-channel (TCP) fallback probe.

memberlist fires one TCP ping when a direct UDP probe times out, on the
theory that datagram loss and peer failure look identical over UDP but
not over a connection-oriented channel. Probe-scheduling work (Cohen,
"Probe Scheduling for Efficient Detection of Silent Failures") motivates
treating this as a distinct, budgeted channel rather than more UDP
retries, so the fallback here is *staged*: the reliable ping goes out
first, and only after a short grace window does the node engage the
indirect ping-req round. An ack on either path completes the probe; an
early reliable ack therefore suppresses the ping-req fan-out entirely,
which is what keeps pure UDP loss from ever reaching the suspicion
subprotocol against a healthy peer.

The policy is pure arithmetic plus telemetry; the node owns the timers.
"""

from __future__ import annotations

from repro.metrics.telemetry import Telemetry


class FallbackPolicy:
    """Decides whether and when the stages of a failed direct probe run.

    Parameters
    ----------
    enabled:
        ``SwimConfig.tcp_fallback_probe``. When off, :meth:`stage_delay`
        is zero and the indirect round engages at the probe timeout,
        exactly as plain SWIM prescribes.
    wait_fraction:
        ``SwimConfig.fallback_probe_wait``: the fraction of the
        (LHM-scaled) probe timeout to wait for a reliable ack before
        launching ping-reqs. Must stay small — helpers still need most
        of the protocol period to return acks and nacks.
    telemetry:
        Destination of the ``fallback_probe_*`` counter family.
    """

    __slots__ = ("_enabled", "_wait_fraction", "_telemetry")

    def __init__(
        self, enabled: bool, wait_fraction: float, telemetry: Telemetry
    ) -> None:
        self._enabled = enabled
        self._wait_fraction = wait_fraction
        self._telemetry = telemetry

    @property
    def enabled(self) -> bool:
        return self._enabled

    def stage_delay(self, scaled_timeout: float) -> float:
        """Seconds between the fallback ping and the indirect round."""
        if not self._enabled:
            return 0.0
        return self._wait_fraction * scaled_timeout

    def note_sent(self) -> None:
        """A fallback ping left the node."""
        self._telemetry.fallback_probes_sent += 1

    def note_ack(self) -> None:
        """A reliable-channel ack completed a pending probe."""
        self._telemetry.fallback_probe_acks += 1

    def note_failure(self) -> None:
        """The protocol period ended with the fallback unanswered."""
        self._telemetry.fallback_probe_failures += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FallbackPolicy(enabled={self._enabled}, "
            f"wait_fraction={self._wait_fraction})"
        )
