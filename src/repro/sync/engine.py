"""The push-pull anti-entropy engine.

:class:`SyncEngine` drives full-state exchanges over the reliable
channel: the periodic push-pull round against a random live peer, the
reconnect offer to a random written-off member, the join handshake, and
the merge of inbound snapshots. It is deliberately sans-everything: the
hosting node injects a clock, an RNG, a send function and a
decision-reaction callback, and keeps ownership of timers and pause
semantics. Precedence itself lives in
:meth:`repro.swim.member_map.MemberMap.merge_remote_state`, the same
spine the gossip handlers use, so the two dissemination paths agree by
construction.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.metrics.telemetry import Telemetry
from repro.swim.member_map import MemberMap, MergeDecision
from repro.swim.messages import PushPull
from repro.swim.state import MemberState

#: Sends one message to an address over the reliable channel (the node
#: binds telemetry and piggyback policy).
SendFn = Callable[[str, PushPull], None]

#: Translates one merge decision into protocol side effects (events,
#: suspicion machinery, rebroadcast, refutation). The second argument is
#: the name of the member whose snapshot carried the claim. Returns
#: ``True`` when the decision changed local state.
ApplyFn = Callable[[MergeDecision, str], bool]


class SyncEngine:
    """Anti-entropy orchestration for one member."""

    __slots__ = (
        "_name",
        "_members",
        "_clock",
        "_rng",
        "_send",
        "_apply",
        "_telemetry",
        "on_merge",
    )

    def __init__(
        self,
        name: str,
        members: MemberMap,
        clock: Callable[[], float],
        rng: random.Random,
        send: SendFn,
        apply_decision: ApplyFn,
        telemetry: Telemetry,
    ) -> None:
        self._name = name
        self._members = members
        self._clock = clock
        self._rng = rng
        self._send = send
        self._apply = apply_decision
        self._telemetry = telemetry
        #: Optional hook observing the number of state changes each merge
        #: applied (feeds the ops plane's merge-size histogram).
        self.on_merge: Optional[Callable[[int], None]] = None

    # ------------------------------------------------------------------ #
    # Outbound rounds
    # ------------------------------------------------------------------ #

    def push_pull_round(self) -> Optional[str]:
        """One periodic anti-entropy exchange with a random live peer.

        Returns the peer's name, or ``None`` when there is nobody to sync
        with (suspects are skipped: syncing with a member we may be about
        to declare dead tells us little about the rest of the group).
        """
        peers = self._members.random_members(1, include_suspect=False)
        if not peers:
            return None
        self._telemetry.syncs_initiated += 1
        self._send(peers[0].address, self._snapshot_message(join=False))
        return peers[0].name

    def reconnect_round(self) -> Optional[str]:
        """Offer a full state sync to one random DEAD member.

        If the member is actually alive again (e.g. the far side of a
        healed partition), it will see our DEAD claim about it in the
        snapshot, refute it, and the refutation cascade re-merges the
        groups. This mirrors serf's reconnect behaviour on top of
        memberlist; members that LEFT gracefully are never contacted.
        """
        candidates = [
            m
            for m in self._members.members()
            if m.state is MemberState.DEAD and m.name != self._name
        ]
        if not candidates:
            return None
        target = candidates[self._rng.randrange(len(candidates))]
        self._telemetry.syncs_initiated += 1
        self._send(target.address, self._snapshot_message(join=False))
        return target.name

    def offer_sync(self, address: str, join: bool = False) -> None:
        """Send an unsolicited full-state offer (the join handshake)."""
        self._telemetry.syncs_initiated += 1
        self._send(address, self._snapshot_message(join=join))

    # ------------------------------------------------------------------ #
    # Inbound
    # ------------------------------------------------------------------ #

    def handle_push_pull(self, message: PushPull, from_address: str) -> int:
        """Answer (for the push half) and merge (the pull half).

        Returns the number of local state changes the merge applied.
        """
        if not message.is_reply:
            self._telemetry.sync_replies_sent += 1
            self._send(from_address, self._snapshot_message(join=False, reply=True))
        return self.merge(message)

    def merge(self, message: PushPull) -> int:
        """Merge a full remote snapshot; returns changes applied."""
        now = self._clock()
        # The wire-merge path consumes raw state entries and returns only
        # non-ignored decisions (MERGE_IGNORED is a guaranteed no-op in
        # the applier, and at sync scale nearly every steady-state entry
        # is ignored).
        decisions, total = self._members.merge_remote_wire_state(
            message.states, now
        )
        changes = 0
        source = message.source
        for decision in decisions:
            if self._apply(decision, source):
                changes += 1
        self._telemetry.sync_merges += 1
        self._telemetry.sync_entries_merged += total
        self._telemetry.sync_changes_applied += changes
        if self.on_merge is not None:
            self.on_merge(changes)
        return changes

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _snapshot_message(self, join: bool, reply: bool = False) -> PushPull:
        return PushPull(
            self._name,
            self._members.snapshot(self._clock()),
            join=join,
            is_reply=reply,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SyncEngine({self._name!r})"
