"""Anti-entropy state synchronisation (memberlist extensions).

The paper's evaluation substrate, HashiCorp memberlist, layers three
reconciliation mechanisms on top of SWIM's epidemic gossip, and Lifeguard
runs on all of them (PAPER.md / DESIGN.md Section 2):

* **push-pull anti-entropy** — every ``push_pull_interval`` a member
  exchanges its full state table with one random live peer over the
  reliable channel, bounding how long two views can stay divergent even
  if every gossip retransmission was lost;
* **reconnect offers** — a member periodically offers a full sync to one
  written-off (DEAD) member so fully partitioned halves re-discover each
  other once connectivity returns;
* **TCP fallback probes** — a direct-probe timeout fires one
  reliable-channel ping before the indirect ping-req round, so pure UDP
  loss does not start the suspicion subprotocol against a healthy peer
  (see :mod:`repro.sync.fallback`).

:class:`repro.sync.engine.SyncEngine` owns the first two; the precedence
rules themselves live in
:meth:`repro.swim.member_map.MemberMap.merge_remote_state` and are shared
with the gossip handlers, so sync and gossip cannot diverge. This package
is kept ``mypy --strict``-clean (enforced in CI).
"""

from repro.sync.engine import SyncEngine
from repro.sync.fallback import FallbackPolicy

__all__ = ["SyncEngine", "FallbackPolicy"]
